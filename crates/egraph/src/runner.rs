//! The saturation driver.
//!
//! Implements the match-and-insert loop of Figure 8 with two application
//! strategies from §3.1:
//!
//! * **depth-first** — apply *every* match of every rule each iteration
//!   (the strategy that blows up on AC rules and times out on GLM/SVM in
//!   the paper's Figure 16), and
//! * **sampling** — cap the number of matches applied per rule per
//!   iteration, sampling uniformly, which "encourages each rule to be
//!   considered equally often and prevents any single rule from exploding
//!   the graph".

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language, RecExpr};
use crate::pattern::Subst;
use crate::rewrite::Rewrite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Match application strategy (§3.1 "Dealing with Expansive Rules").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Apply all matches of all rules every iteration.
    DepthFirst,
    /// Apply at most `match_limit` sampled matches per rule per iteration.
    Sampling { match_limit: usize, seed: u64 },
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::Sampling {
            match_limit: 40,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-rule backoff (ROADMAP "Per-rule scheduling").
///
/// AC rules keep re-finding the same matches long after they stop
/// producing unions; searching them every iteration is pure overhead. The
/// runner watches each rule's [`RuleIterStats`]: once a rule has matched
/// without contributing a union for `fruitless_threshold` consecutive
/// iterations, it is muted — search is skipped entirely — for
/// `mute_iters` iterations, then re-admitted. With `exponential` set
/// (the default), a rule that resumes its fruitless streak after being
/// re-admitted is muted for twice as long each time, capped at
/// `max_mute_iters`, so persistently useless rules converge to paying
/// one probe per cap window instead of one per fixed-K window.
///
/// Muting never changes the fixpoint: a zero-union iteration only counts
/// as saturation when no rule is muted; otherwise every rule is unmuted
/// and the iteration retried, so [`StopReason::Saturated`] keeps its
/// meaning (the e-graph is closed under *all* rules).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Consecutive match-without-union iterations before muting.
    pub fruitless_threshold: usize,
    /// How many iterations a muted rule sits out (the base length).
    pub mute_iters: usize,
    /// Double the mute length on every repeated fruitless streak.
    pub exponential: bool,
    /// Cap on the (exponentially grown) mute length.
    pub max_mute_iters: usize,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            fruitless_threshold: 3,
            mute_iters: 4,
            exponential: true,
            max_mute_iters: 64,
        }
    }
}

impl BackoffConfig {
    /// Fixed-K muting (the PR-2 scheduler): every mute lasts `mute_iters`.
    pub fn fixed(fruitless_threshold: usize, mute_iters: usize) -> BackoffConfig {
        BackoffConfig {
            fruitless_threshold,
            mute_iters,
            exponential: false,
            max_mute_iters: mute_iters,
        }
    }

    /// Mute length for the `streak`-th consecutive fruitless streak.
    fn mute_len(&self, streak: u32) -> usize {
        if !self.exponential {
            return self.mute_iters;
        }
        let doubled = self.mute_iters.saturating_mul(1usize << streak.min(16));
        doubled.min(self.max_mute_iters.max(self.mute_iters))
    }
}

/// Mutable backoff bookkeeping for one rule.
#[derive(Clone, Debug, Default)]
struct BackoffState {
    /// Consecutive iterations with matches but no unions.
    fruitless: usize,
    /// Muted while the iteration index is below this.
    muted_until: usize,
    /// Completed fruitless streaks since the rule last produced a union
    /// (drives the exponential mute-length growth).
    streak: u32,
}

/// Why the runner stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No rule changed the graph: the e-graph represents the full
    /// transitive closure of the rules applied to the input.
    Saturated,
    IterationLimit(usize),
    NodeLimit(usize),
    TimeLimit(Duration),
}

/// Per-rule statistics for one saturation iteration.
#[derive(Clone, Debug, Default)]
pub struct RuleIterStats {
    pub rule: String,
    /// Classes the op-head index proposed for this rule's lhs (the
    /// classes actually visited by the compiled matcher).
    pub candidates: usize,
    /// (class, subst) instances found.
    pub matches: usize,
    /// Instances applied after scheduling (sampling may drop some).
    pub applied: usize,
    /// Unions this rule's applications produced directly (congruence
    /// unions surfaced later by `rebuild` are not attributed).
    pub unions: usize,
    /// True when backoff muted this rule for this iteration (its search
    /// was skipped entirely).
    pub muted: bool,
}

/// Statistics for one saturation iteration.
#[derive(Clone, Debug, Default)]
pub struct Iteration {
    pub matches_found: usize,
    pub matches_applied: usize,
    pub unions: usize,
    pub egraph_nodes: usize,
    pub egraph_classes: usize,
    pub search_time: Duration,
    pub apply_time: Duration,
    pub rebuild_time: Duration,
    /// Per-rule candidate/match/apply counts, in rule order.
    pub rules: Vec<RuleIterStats>,
}

/// Equality-saturation runner with limits and statistics.
pub struct Runner<L: Language, A: Analysis<L>> {
    pub egraph: EGraph<L, A>,
    pub roots: Vec<Id>,
    pub iterations: Vec<Iteration>,
    pub stop_reason: Option<StopReason>,
    scheduler: Scheduler,
    backoff: Option<BackoffConfig>,
    iter_limit: usize,
    node_limit: usize,
    time_limit: Duration,
}

impl<L: Language, A: Analysis<L> + Default> Default for Runner<L, A> {
    fn default() -> Self {
        Runner::new(A::default())
    }
}

impl<L: Language, A: Analysis<L>> Runner<L, A> {
    pub fn new(analysis: A) -> Self {
        Runner {
            egraph: EGraph::new(analysis),
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            scheduler: Scheduler::default(),
            backoff: Some(BackoffConfig::default()),
            iter_limit: 30,
            node_limit: 50_000,
            time_limit: Duration::from_secs(10),
        }
    }

    pub fn with_egraph(mut self, egraph: EGraph<L, A>) -> Self {
        self.egraph = egraph;
        self
    }

    /// Add a root expression to optimize.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.roots.push(id);
        self
    }

    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Set the per-rule backoff policy (on by default).
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Disable per-rule backoff: search every rule every iteration.
    pub fn without_backoff(mut self) -> Self {
        self.backoff = None;
        self
    }

    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Did the run stop because the rules were exhausted?
    pub fn saturated(&self) -> bool {
        matches!(self.stop_reason, Some(StopReason::Saturated))
    }

    /// Run saturation to convergence or until a limit trips.
    pub fn run(mut self, rules: &[Rewrite<L, A>]) -> Self {
        let start = Instant::now();
        if !self.egraph.is_clean() {
            self.egraph.rebuild();
        }
        let mut backoff_state = vec![BackoffState::default(); rules.len()];

        loop {
            if self.iterations.len() >= self.iter_limit {
                self.stop_reason = Some(StopReason::IterationLimit(self.iter_limit));
                break;
            }
            if self.egraph.total_number_of_nodes() > self.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit(self.node_limit));
                break;
            }
            if start.elapsed() > self.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit(self.time_limit));
                break;
            }

            let mut iter = Iteration::default();
            let iter_ix = self.iterations.len();

            // --- search phase ---------------------------------------
            let t = Instant::now();
            // Flatten each rule's matches to (class, subst) instances.
            let mut per_rule: Vec<Vec<(Id, Subst)>> = Vec::with_capacity(rules.len());
            for (i, rule) in rules.iter().enumerate() {
                if self.backoff.is_some() && iter_ix < backoff_state[i].muted_until {
                    // muted: skip the search entirely
                    iter.rules.push(RuleIterStats {
                        rule: rule.name.clone(),
                        muted: true,
                        ..RuleIterStats::default()
                    });
                    per_rule.push(Vec::new());
                    continue;
                }
                let (matches, candidates) = rule.search_with_stats(&self.egraph);
                let mut instances = Vec::new();
                for m in matches {
                    for s in m.substs {
                        instances.push((m.eclass, s));
                    }
                }
                iter.matches_found += instances.len();
                iter.rules.push(RuleIterStats {
                    rule: rule.name.clone(),
                    candidates,
                    matches: instances.len(),
                    ..RuleIterStats::default()
                });
                per_rule.push(instances);
            }
            iter.search_time = t.elapsed();

            // --- scheduling + apply phase ----------------------------
            let t = Instant::now();
            for (i, (rule, mut instances)) in rules.iter().zip(per_rule).enumerate() {
                if let Scheduler::Sampling { match_limit, seed } = self.scheduler {
                    // Each rule samples from its own RNG stream derived
                    // from the seed, the iteration, and the rule *name*,
                    // so which matches a rule applies is stable under
                    // rule reordering.
                    let mut rng = rule_rng(seed, iter_ix as u64, &rule.name);
                    sample_in_place(&mut instances, match_limit, &mut rng);
                }
                iter.rules[i].applied = instances.len();
                let mut rule_unions = 0;
                for (class, subst) in instances {
                    rule_unions += rule.apply_match(&mut self.egraph, class, &subst);
                    iter.matches_applied += 1;
                }
                iter.rules[i].unions = rule_unions;
                iter.unions += rule_unions;
            }
            iter.apply_time = t.elapsed();

            // --- rebuild phase ---------------------------------------
            let t = Instant::now();
            iter.unions += self.egraph.rebuild();
            iter.rebuild_time = t.elapsed();

            // --- backoff bookkeeping ---------------------------------
            let mut any_muted = false;
            if let Some(cfg) = self.backoff {
                for (i, state) in backoff_state.iter_mut().enumerate() {
                    let stats = &iter.rules[i];
                    if stats.muted {
                        any_muted = true;
                        continue;
                    }
                    if stats.matches > 0 && stats.unions == 0 {
                        state.fruitless += 1;
                        if state.fruitless >= cfg.fruitless_threshold {
                            state.muted_until = iter_ix + 1 + cfg.mute_len(state.streak);
                            state.streak = state.streak.saturating_add(1);
                            state.fruitless = 0;
                        }
                    } else {
                        state.fruitless = 0;
                        if stats.unions > 0 {
                            // productive again: restart the exponential ladder
                            state.streak = 0;
                        }
                    }
                }
            }

            iter.egraph_nodes = self.egraph.total_number_of_nodes();
            iter.egraph_classes = self.egraph.number_of_classes();
            let saturated = iter.unions == 0;
            self.iterations.push(iter);

            if saturated {
                if any_muted {
                    // A fixpoint among the *active* rules only: re-admit
                    // everything and try again before declaring saturation.
                    for state in &mut backoff_state {
                        *state = BackoffState::default();
                    }
                    continue;
                }
                self.stop_reason = Some(StopReason::Saturated);
                break;
            }
        }
        // Report canonical roots.
        for root in &mut self.roots {
            *root = self.egraph.find(*root);
        }
        self
    }
}

/// Deterministic RNG stream for one rule in one iteration: a hash of the
/// scheduler seed, the iteration number, and the rule name. Independent
/// of the rule's position in the rule list.
fn rule_rng(seed: u64, iteration: u64, name: &str) -> StdRng {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write(name.as_bytes());
    h.write_u64(seed);
    h.write_u64(iteration);
    StdRng::seed_from_u64(h.finish())
}

/// Keep a uniform sample of `limit` elements of `v` (partial Fisher-Yates).
fn sample_in_place<T>(v: &mut Vec<T>, limit: usize, rng: &mut StdRng) {
    if v.len() <= limit {
        return;
    }
    for i in 0..limit {
        let j = rng.random_range(i..v.len());
        v.swap(i, j);
    }
    v.truncate(limit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    fn rules() -> Vec<Rewrite<Arith, ()>> {
        vec![
            Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::new("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            Rewrite::new("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::new("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))").unwrap(),
            Rewrite::new("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))").unwrap(),
        ]
    }

    #[test]
    fn saturates_small_input() {
        let expr = parse_rec_expr("(+ x y)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert!(runner.saturated(), "{:?}", runner.stop_reason);
        let flipped = parse_rec_expr::<Arith>("(+ y x)").unwrap();
        assert_eq!(runner.egraph.lookup_expr(&flipped), Some(runner.roots[0]));
    }

    #[test]
    fn proves_distributivity_composition() {
        // (x + y) * z == x*z + y*z requires comm + distribute
        let lhs = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rhs = parse_rec_expr::<Arith>("(+ (* x z) (* y z))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&lhs)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert_eq!(
            runner
                .egraph
                .lookup_expr(&rhs)
                .map(|id| runner.egraph.find(id)),
            Some(runner.roots[0])
        );
    }

    #[test]
    fn iteration_limit_respected() {
        let expr = parse_rec_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_iter_limit(2)
            .run(&rules());
        assert!(runner.iterations.len() <= 2);
    }

    #[test]
    fn node_limit_stops_explosion() {
        let expr =
            parse_rec_expr("(* (* (* (* (* (* a b) c) d) e) f) (* (* g h) (* i j)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_node_limit(200)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert!(matches!(
            runner.stop_reason,
            Some(StopReason::NodeLimit(_)) | Some(StopReason::Saturated)
        ));
    }

    #[test]
    fn sampling_still_converges_on_small_input() {
        // §4.3: "sampling always preserves convergence in practice"
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rhs = parse_rec_expr::<Arith>("(+ (* x z) (* y z))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::Sampling {
                match_limit: 4,
                seed: 7,
            })
            .with_iter_limit(100)
            .run(&rules());
        assert!(runner.saturated());
        assert_eq!(
            runner
                .egraph
                .lookup_expr(&rhs)
                .map(|id| runner.egraph.find(id)),
            Some(runner.roots[0])
        );
    }

    #[test]
    fn stats_are_recorded() {
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .run(&rules());
        assert!(!runner.iterations.is_empty());
        let last = runner.iterations.last().unwrap();
        assert!(last.egraph_nodes > 0);
        assert_eq!(last.unions, 0, "last iteration must be a fixpoint");
    }

    #[test]
    fn per_rule_stats_are_recorded() {
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rules = rules();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules);
        let first = &runner.iterations[0];
        assert_eq!(first.rules.len(), rules.len());
        for (stat, rule) in first.rules.iter().zip(&rules) {
            assert_eq!(stat.rule, rule.name);
            if stat.matches > 0 {
                assert!(stat.candidates > 0, "matches require candidates");
            }
            assert_eq!(
                stat.applied, stat.matches,
                "depth-first applies every match"
            );
        }
        // (* (+ x y) z): one class matches comm-mul, one comm-add
        assert_eq!(first.rules[0].matches, 1, "comm-add");
        assert_eq!(first.rules[1].matches, 1, "comm-mul");
        let total: usize = first.rules.iter().map(|r| r.matches).sum();
        assert_eq!(total, first.matches_found);
    }

    /// The default rules plus an identity rewrite: it matches every `+`
    /// class each iteration and never produces a union — exactly the
    /// fruitless-but-matching shape backoff exists to mute.
    fn rules_with_identity() -> Vec<Rewrite<Arith, ()>> {
        let mut rs = rules();
        rs.push(Rewrite::new("identity-add", "(+ ?a ?b)", "(+ ?a ?b)").unwrap());
        rs
    }

    #[test]
    fn backoff_mutes_fruitless_rules_and_saturation_is_preserved() {
        let expr = parse_rec_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let cfg = BackoffConfig {
            fruitless_threshold: 2,
            mute_iters: 3,
            ..BackoffConfig::default()
        };
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_backoff(cfg)
            .with_iter_limit(50)
            .run(&rules_with_identity());
        assert!(runner.saturated(), "{:?}", runner.stop_reason);
        let muted_iters: usize = runner
            .iterations
            .iter()
            .flat_map(|it| &it.rules)
            .filter(|r| r.muted)
            .count();
        assert!(muted_iters > 0, "backoff never muted any rule");
        // the final iteration must be a full-rule fixpoint: nothing muted
        let last = runner.iterations.last().unwrap();
        assert!(last.rules.iter().all(|r| !r.muted));
        assert_eq!(last.unions, 0);
        // and the e-graph is the same closure the no-backoff run reaches
        let plain = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .without_backoff()
            .with_iter_limit(50)
            .run(&rules_with_identity());
        assert!(plain.saturated());
        assert_eq!(
            runner.egraph.total_number_of_nodes(),
            plain.egraph.total_number_of_nodes()
        );
        assert_eq!(
            runner.egraph.number_of_classes(),
            plain.egraph.number_of_classes()
        );
    }

    #[test]
    fn muted_rules_skip_search_work() {
        let expr = parse_rec_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_backoff(BackoffConfig {
                fruitless_threshold: 1,
                mute_iters: 2,
                ..BackoffConfig::default()
            })
            .with_iter_limit(50)
            .run(&rules_with_identity());
        for it in &runner.iterations {
            for r in &it.rules {
                if r.muted {
                    assert_eq!(r.candidates, 0, "muted rule searched candidates");
                    assert_eq!(r.matches, 0);
                    assert_eq!(r.applied, 0);
                }
            }
        }
    }

    /// Total candidate classes the matcher visited for one rule.
    fn rule_candidates(runner: &Runner<Arith, ()>, name: &str) -> usize {
        runner
            .iterations
            .iter()
            .flat_map(|it| &it.rules)
            .filter(|r| r.rule == name)
            .map(|r| r.candidates)
            .sum()
    }

    #[test]
    fn exponential_backoff_wastes_fewer_candidates_than_fixed_k() {
        // AC-heavy input: the comm/assoc closure of a 6-leaf sum takes
        // many sampled iterations to saturate, during which the identity
        // rule keeps matching every `+` class without ever producing a
        // union — the pure-waste shape backoff exists for.
        let expr = parse_rec_expr("(+ (+ a b) (+ (+ c d) (+ e f)))").unwrap();
        let run = |cfg: BackoffConfig| -> Runner<Arith, ()> {
            Runner::<Arith, ()>::default()
                .with_expr(&expr)
                .with_scheduler(Scheduler::Sampling {
                    match_limit: 2,
                    seed: 5,
                })
                .with_backoff(cfg)
                .with_iter_limit(600)
                .with_node_limit(100_000)
                .run(&rules_with_identity())
        };
        let fixed = run(BackoffConfig::fixed(1, 2));
        let expo = run(BackoffConfig {
            fruitless_threshold: 1,
            mute_iters: 2,
            exponential: true,
            max_mute_iters: 64,
        });
        assert!(fixed.saturated(), "{:?}", fixed.stop_reason);
        assert!(expo.saturated(), "{:?}", expo.stop_reason);
        // saturation is the same closure either way
        assert_eq!(
            fixed.egraph.total_number_of_nodes(),
            expo.egraph.total_number_of_nodes()
        );
        assert_eq!(
            fixed.egraph.number_of_classes(),
            expo.egraph.number_of_classes()
        );
        // ... but the doubling mute visits far fewer wasted candidates
        let wasted_fixed = rule_candidates(&fixed, "identity-add");
        let wasted_expo = rule_candidates(&expo, "identity-add");
        assert!(
            wasted_expo < wasted_fixed,
            "exponential backoff must probe the fruitless rule less: {wasted_expo} vs {wasted_fixed}"
        );
    }

    #[test]
    fn per_rule_unions_sum_to_apply_unions() {
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        for it in &runner.iterations {
            let per_rule: usize = it.rules.iter().map(|r| r.unions).sum();
            assert!(per_rule <= it.unions, "rebuild can only add unions");
        }
    }

    /// Which flipped `(+ b a)` forms exist after one sampled iteration —
    /// the observable trace of *which* matches the sampler picked.
    fn sampled_flips(rule_order: &[Rewrite<Arith, ()>]) -> Vec<String> {
        let mut runner = Runner::<Arith, ()>::default().with_scheduler(Scheduler::Sampling {
            match_limit: 2,
            seed: 99,
        });
        let pairs = [
            ("a", "b"),
            ("c", "d"),
            ("e", "f"),
            ("g", "h"),
            ("i", "j"),
            ("k", "l"),
        ];
        for (l, r) in pairs {
            let e = parse_rec_expr(&format!("(+ {l} {r})")).unwrap();
            runner = runner.with_expr(&e);
        }
        let runner = runner.with_iter_limit(1).run(rule_order);
        let mut flipped = Vec::new();
        for (l, r) in pairs {
            let e = parse_rec_expr::<Arith>(&format!("(+ {r} {l})")).unwrap();
            if runner.egraph.lookup_expr(&e).is_some() {
                flipped.push(format!("(+ {r} {l})"));
            }
        }
        flipped
    }

    #[test]
    fn sampling_is_deterministic_per_rule_under_reordering() {
        let fwd = rules();
        let mut rev = rules();
        rev.reverse();
        let a = sampled_flips(&fwd);
        let b = sampled_flips(&rev);
        assert!(!a.is_empty(), "match_limit 2 of 6 must flip something");
        assert!(
            a.len() < 6,
            "sampling must not apply every comm-add match in one iteration"
        );
        assert_eq!(
            a, b,
            "which matches a rule samples must not depend on rule order"
        );
        // and repeated runs are identical outright
        assert_eq!(a, sampled_flips(&fwd));
    }
}
