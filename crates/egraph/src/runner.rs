//! The saturation driver.
//!
//! Implements the match-and-insert loop of Figure 8 with two application
//! strategies from §3.1:
//!
//! * **depth-first** — apply *every* match of every rule each iteration
//!   (the strategy that blows up on AC rules and times out on GLM/SVM in
//!   the paper's Figure 16), and
//! * **sampling** — cap the number of matches applied per rule per
//!   iteration, sampling uniformly, which "encourages each rule to be
//!   considered equally often and prevents any single rule from exploding
//!   the graph".

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language, RecExpr};
use crate::pattern::Subst;
use crate::rewrite::Rewrite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Match application strategy (§3.1 "Dealing with Expansive Rules").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Apply all matches of all rules every iteration.
    DepthFirst,
    /// Apply at most `match_limit` sampled matches per rule per iteration.
    Sampling { match_limit: usize, seed: u64 },
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::Sampling {
            match_limit: 40,
            seed: 0xC0FFEE,
        }
    }
}

/// Why the runner stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No rule changed the graph: the e-graph represents the full
    /// transitive closure of the rules applied to the input.
    Saturated,
    IterationLimit(usize),
    NodeLimit(usize),
    TimeLimit(Duration),
}

/// Statistics for one saturation iteration.
#[derive(Clone, Debug, Default)]
pub struct Iteration {
    pub matches_found: usize,
    pub matches_applied: usize,
    pub unions: usize,
    pub egraph_nodes: usize,
    pub egraph_classes: usize,
    pub search_time: Duration,
    pub apply_time: Duration,
    pub rebuild_time: Duration,
}

/// Equality-saturation runner with limits and statistics.
pub struct Runner<L: Language, A: Analysis<L>> {
    pub egraph: EGraph<L, A>,
    pub roots: Vec<Id>,
    pub iterations: Vec<Iteration>,
    pub stop_reason: Option<StopReason>,
    scheduler: Scheduler,
    iter_limit: usize,
    node_limit: usize,
    time_limit: Duration,
}

impl<L: Language, A: Analysis<L> + Default> Default for Runner<L, A> {
    fn default() -> Self {
        Runner::new(A::default())
    }
}

impl<L: Language, A: Analysis<L>> Runner<L, A> {
    pub fn new(analysis: A) -> Self {
        Runner {
            egraph: EGraph::new(analysis),
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            scheduler: Scheduler::default(),
            iter_limit: 30,
            node_limit: 50_000,
            time_limit: Duration::from_secs(10),
        }
    }

    pub fn with_egraph(mut self, egraph: EGraph<L, A>) -> Self {
        self.egraph = egraph;
        self
    }

    /// Add a root expression to optimize.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.roots.push(id);
        self
    }

    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Did the run stop because the rules were exhausted?
    pub fn saturated(&self) -> bool {
        matches!(self.stop_reason, Some(StopReason::Saturated))
    }

    /// Run saturation to convergence or until a limit trips.
    pub fn run(mut self, rules: &[Rewrite<L, A>]) -> Self {
        let start = Instant::now();
        let mut rng = match self.scheduler {
            Scheduler::Sampling { seed, .. } => StdRng::seed_from_u64(seed),
            Scheduler::DepthFirst => StdRng::seed_from_u64(0),
        };
        if !self.egraph.is_clean() {
            self.egraph.rebuild();
        }

        loop {
            if self.iterations.len() >= self.iter_limit {
                self.stop_reason = Some(StopReason::IterationLimit(self.iter_limit));
                break;
            }
            if self.egraph.total_number_of_nodes() > self.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit(self.node_limit));
                break;
            }
            if start.elapsed() > self.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit(self.time_limit));
                break;
            }

            let mut iter = Iteration::default();

            // --- search phase ---------------------------------------
            let t = Instant::now();
            // Flatten each rule's matches to (class, subst) instances.
            let mut per_rule: Vec<Vec<(Id, Subst)>> = Vec::with_capacity(rules.len());
            for rule in rules {
                let mut instances = Vec::new();
                for m in rule.search(&self.egraph) {
                    for s in m.substs {
                        instances.push((m.eclass, s));
                    }
                }
                iter.matches_found += instances.len();
                per_rule.push(instances);
            }
            iter.search_time = t.elapsed();

            // --- scheduling + apply phase ----------------------------
            let t = Instant::now();
            for (rule, mut instances) in rules.iter().zip(per_rule) {
                if let Scheduler::Sampling { match_limit, .. } = self.scheduler {
                    sample_in_place(&mut instances, match_limit, &mut rng);
                }
                for (class, subst) in instances {
                    iter.unions += rule.apply_match(&mut self.egraph, class, &subst);
                    iter.matches_applied += 1;
                }
            }
            iter.apply_time = t.elapsed();

            // --- rebuild phase ---------------------------------------
            let t = Instant::now();
            iter.unions += self.egraph.rebuild();
            iter.rebuild_time = t.elapsed();

            iter.egraph_nodes = self.egraph.total_number_of_nodes();
            iter.egraph_classes = self.egraph.number_of_classes();
            let saturated = iter.unions == 0;
            self.iterations.push(iter);

            if saturated {
                self.stop_reason = Some(StopReason::Saturated);
                break;
            }
        }
        // Report canonical roots.
        for root in &mut self.roots {
            *root = self.egraph.find(*root);
        }
        self
    }
}

/// Keep a uniform sample of `limit` elements of `v` (partial Fisher-Yates).
fn sample_in_place<T>(v: &mut Vec<T>, limit: usize, rng: &mut StdRng) {
    if v.len() <= limit {
        return;
    }
    for i in 0..limit {
        let j = rng.random_range(i..v.len());
        v.swap(i, j);
    }
    v.truncate(limit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    fn rules() -> Vec<Rewrite<Arith, ()>> {
        vec![
            Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::new("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            Rewrite::new("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::new("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))").unwrap(),
            Rewrite::new("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))").unwrap(),
        ]
    }

    #[test]
    fn saturates_small_input() {
        let expr = parse_rec_expr("(+ x y)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert!(runner.saturated(), "{:?}", runner.stop_reason);
        let flipped = parse_rec_expr::<Arith>("(+ y x)").unwrap();
        assert_eq!(
            runner.egraph.lookup_expr(&flipped),
            Some(runner.roots[0])
        );
    }

    #[test]
    fn proves_distributivity_composition() {
        // (x + y) * z == x*z + y*z requires comm + distribute
        let lhs = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rhs = parse_rec_expr::<Arith>("(+ (* x z) (* y z))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&lhs)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert_eq!(
            runner.egraph.lookup_expr(&rhs).map(|id| runner.egraph.find(id)),
            Some(runner.roots[0])
        );
    }

    #[test]
    fn iteration_limit_respected() {
        let expr = parse_rec_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_iter_limit(2)
            .run(&rules());
        assert!(runner.iterations.len() <= 2);
    }

    #[test]
    fn node_limit_stops_explosion() {
        let expr =
            parse_rec_expr("(* (* (* (* (* (* a b) c) d) e) f) (* (* g h) (* i j)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_node_limit(200)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert!(matches!(
            runner.stop_reason,
            Some(StopReason::NodeLimit(_)) | Some(StopReason::Saturated)
        ));
    }

    #[test]
    fn sampling_still_converges_on_small_input() {
        // §4.3: "sampling always preserves convergence in practice"
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rhs = parse_rec_expr::<Arith>("(+ (* x z) (* y z))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::Sampling {
                match_limit: 4,
                seed: 7,
            })
            .with_iter_limit(100)
            .run(&rules());
        assert!(runner.saturated());
        assert_eq!(
            runner.egraph.lookup_expr(&rhs).map(|id| runner.egraph.find(id)),
            Some(runner.roots[0])
        );
    }

    #[test]
    fn stats_are_recorded() {
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .run(&rules());
        assert!(!runner.iterations.is_empty());
        let last = runner.iterations.last().unwrap();
        assert!(last.egraph_nodes > 0);
        assert_eq!(last.unions, 0, "last iteration must be a fixpoint");
    }
}
