//! Abstract schema typing of rewrite patterns (§3.2's class invariant,
//! statically).
//!
//! The runtime analysis (`spores_core::analysis`) computes a *concrete*
//! schema per e-class. A rewrite pattern has no concrete schema — `?a`
//! can match anything — so this pass interprets patterns over an
//! *abstract* schema algebra instead:
//!
//! * the schema of a pattern variable `?a` is the symbolic atom
//!   `Attr(?a)`;
//! * `(b ?i ?j ?x)` contributes the bound index atoms `{?i, ?j}`;
//! * `+` / `*` (and every point-wise operator) union the operand
//!   schemas;
//! * `(sum ?i e)` subtracts `?i`: an index atom equal to `?i` is
//!   removed outright, any other atom records `?i` in its subtraction
//!   set (whether `?i` actually occurs in `Attr(?a)` is unknowable
//!   statically — that is exactly what the side conditions decide).
//!
//! A rule is schema-sound when the lhs and rhs normal forms are equal.
//! When they differ, the pass searches for a set of *hypotheses* —
//! `?i ∉ Attr(?a)` (erase `?i` from `?a`'s subtraction sets) or
//! `Attr(?b) ⊆ Attr(?a)` (absorb `?b`'s atom into `?a`'s) — that makes
//! them equal, and then checks the rule *declares* each needed
//! hypothesis as a [`ConditionMeta`]. Needed-but-undeclared hypotheses
//! are violations; no fixing hypothesis set at all is a hard mismatch
//! (e.g. a Σ-bound index escaping its binder on the rhs).

use spores_core::lang::Math;
use spores_core::rules::MathRewrite;
use spores_egraph::{ConditionMeta, ENodeOrVar, Id, Language, RecExpr, Var};
use spores_ir::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// An index occurrence in a pattern: a pattern variable (`?i`) or a
/// concrete index symbol (`i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexRef {
    Var(Var),
    Sym(Symbol),
}

impl fmt::Display for IndexRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexRef::Var(v) => write!(f, "{v}"),
            IndexRef::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A leaf whose attribute set is symbolic: a pattern variable or a
/// concrete (matrix) symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeafRef {
    Var(Var),
    Sym(Symbol),
}

impl fmt::Display for LeafRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeafRef::Var(v) => write!(f, "Attr({v})"),
            LeafRef::Sym(s) => write!(f, "Attr({s})"),
        }
    }
}

/// One contribution to an abstract schema: a base attribute set minus a
/// set of Σ-subtracted indices.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Atom {
    base: Base,
    minus: BTreeSet<IndexRef>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Base {
    Leaf(LeafRef),
    Index(IndexRef),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Base::Leaf(l) => write!(f, "{l}")?,
            Base::Index(i) => write!(f, "{{{i}}}")?,
        }
        for m in &self.minus {
            write!(f, "∖{m}")?;
        }
        Ok(())
    }
}

/// An abstract schema: a union of [`Atom`]s in normal form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbsSchema {
    atoms: BTreeSet<Atom>,
}

impl fmt::Display for AbsSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "∅");
        }
        for (k, a) in self.atoms.iter().enumerate() {
            if k > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl AbsSchema {
    fn union(mut self, other: AbsSchema) -> AbsSchema {
        self.atoms.extend(other.atoms);
        self
    }

    fn subtract(self, idx: IndexRef) -> AbsSchema {
        let mut out = BTreeSet::new();
        for mut atom in self.atoms {
            // subtracting the atom's own index removes it entirely;
            // anything else goes in the subtraction set
            if atom.base == Base::Index(idx) {
                continue;
            }
            atom.minus.insert(idx);
            out.insert(atom);
        }
        AbsSchema { atoms: out }
    }

    fn leaf(l: LeafRef) -> AbsSchema {
        AbsSchema {
            atoms: BTreeSet::from([Atom {
                base: Base::Leaf(l),
                minus: BTreeSet::new(),
            }]),
        }
    }

    fn empty() -> AbsSchema {
        AbsSchema::default()
    }

    /// Leaves occurring as atom bases.
    fn leaves(&self) -> BTreeSet<LeafRef> {
        self.atoms
            .iter()
            .filter_map(|a| match a.base {
                Base::Leaf(l) => Some(l),
                Base::Index(_) => None,
            })
            .collect()
    }

    /// Apply a hypothesis (monotone erasure; application order never
    /// matters).
    fn apply(&self, h: &Hypothesis) -> AbsSchema {
        let mut atoms: BTreeSet<Atom> = match h {
            Hypothesis::IndexFree { index, of } => self
                .atoms
                .iter()
                .cloned()
                .map(|mut a| {
                    if a.base == Base::Leaf(*of) {
                        a.minus.remove(index);
                    }
                    a
                })
                .collect(),
            Hypothesis::Absorbed { sub, sup } => {
                let mut out = BTreeSet::new();
                for a in &self.atoms {
                    let absorbed = a.base == Base::Leaf(*sub)
                        && self
                            .atoms
                            .iter()
                            .any(|k| k.base == Base::Leaf(*sup) && k.minus.is_subset(&a.minus));
                    if !absorbed {
                        out.insert(a.clone());
                    }
                }
                out
            }
        };
        AbsSchema {
            atoms: std::mem::take(&mut atoms),
        }
    }
}

/// A schema hypothesis the algebra may need to equate the two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Hypothesis {
    /// `index ∉ Attr(of)`.
    IndexFree { index: IndexRef, of: LeafRef },
    /// `Attr(sub) ⊆ Attr(sup)` (the schema half of the zero-absorption
    /// guard; the value half is an `IsZero` declaration).
    Absorbed { sub: LeafRef, sup: LeafRef },
}

impl fmt::Display for Hypothesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hypothesis::IndexFree { index, of } => write!(f, "{index} ∉ {of}"),
            Hypothesis::Absorbed { sub, sup } => write!(f, "{sub} ⊆ {sup}"),
        }
    }
}

/// Outcome of the schema pass for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaVerdict {
    /// Lhs and rhs schemas are unconditionally equal.
    Equal,
    /// Equal under these hypotheses, every one of which the rule
    /// declares as a [`ConditionMeta`].
    EqualUnderConditions(Vec<Hypothesis>),
    /// Equal under `needed`, but `missing` of them are not declared on
    /// the rule. A violation: the rule would merge classes with
    /// different schemas whenever the undeclared hypothesis fails.
    Undeclared {
        needed: Vec<Hypothesis>,
        missing: Vec<Hypothesis>,
    },
    /// No hypothesis set in the vocabulary equates the sides (e.g. a
    /// Σ-bound index escaping its binder). A violation.
    Mismatch { lhs: String, rhs: String },
    /// The pass cannot type this rule (dynamic applier, opaque
    /// condition, LA-structural operators, or an index/value role
    /// conflict reported separately). A warning, not a violation.
    NotAnalyzable(String),
}

impl SchemaVerdict {
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            SchemaVerdict::Undeclared { .. } | SchemaVerdict::Mismatch { .. }
        )
    }
}

/// The role a pattern variable plays, inferred from position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Index,
    Value,
}

struct Interp<'a> {
    nodes: &'a [ENodeOrVar<Math>],
    roles: Vec<(Var, Role)>,
    conflict: Option<Var>,
}

impl<'a> Interp<'a> {
    fn new(ast: &'a RecExpr<ENodeOrVar<Math>>) -> Self {
        Interp {
            nodes: ast.nodes(),
            roles: Vec::new(),
            conflict: None,
        }
    }

    fn note_role(&mut self, v: Var, role: Role) {
        match self.roles.iter().find(|(w, _)| *w == v) {
            Some((_, r)) if *r != role => self.conflict = Some(v),
            Some(_) => {}
            None => self.roles.push((v, role)),
        }
    }

    /// Read an index-position child: `?i`, a concrete index symbol, or
    /// `_` (None).
    fn index_ref(&mut self, id: Id) -> Result<Option<IndexRef>, String> {
        match &self.nodes[id.index()] {
            ENodeOrVar::Var(v) => {
                self.note_role(*v, Role::Index);
                Ok(Some(IndexRef::Var(*v)))
            }
            ENodeOrVar::ENode(Math::Sym(s)) => Ok(Some(IndexRef::Sym(*s))),
            ENodeOrVar::ENode(Math::NoIdx) => Ok(None),
            ENodeOrVar::ENode(n) => Err(format!(
                "expected an index in index position, found `{}`",
                n.op_display()
            )),
        }
    }

    fn eval(&mut self, id: Id) -> Result<AbsSchema, String> {
        let node = self.nodes[id.index()].clone();
        match node {
            ENodeOrVar::Var(v) => {
                self.note_role(v, Role::Value);
                Ok(AbsSchema::leaf(LeafRef::Var(v)))
            }
            ENodeOrVar::ENode(n) => match n {
                Math::Lit(_) => Ok(AbsSchema::empty()),
                Math::Sym(s) => Ok(AbsSchema::leaf(LeafRef::Sym(s))),
                Math::NoIdx => Err("`_` outside an index position".to_owned()),
                // point-wise binary operators union the operand schemas
                Math::Add([a, b])
                | Math::Mul([a, b])
                | Math::LAdd([a, b])
                | Math::LSub([a, b])
                | Math::LMul([a, b])
                | Math::LDiv([a, b])
                | Math::Pow([a, b])
                | Math::Gt([a, b])
                | Math::Lt([a, b])
                | Math::Ge([a, b])
                | Math::Le([a, b])
                | Math::BMin([a, b])
                | Math::BMax([a, b]) => Ok(self.eval(a)?.union(self.eval(b)?)),
                // point-wise unary operators preserve the schema
                Math::Inv(a)
                | Math::Exp(a)
                | Math::Log(a)
                | Math::Sqrt(a)
                | Math::Abs(a)
                | Math::Sign(a)
                | Math::Sigmoid(a)
                | Math::Sprop(a) => self.eval(a),
                Math::Agg([i, body]) => {
                    let idx = self.index_ref(i)?.ok_or_else(|| "Σ over `_`".to_owned())?;
                    Ok(self.eval(body)?.subtract(idx))
                }
                Math::Dim(i) => {
                    self.index_ref(i)?;
                    Ok(AbsSchema::empty())
                }
                Math::Bind([i, j, a]) => {
                    // the bound matrix contributes no schema of its own,
                    // but still walk it for role tracking
                    let ri = self.index_ref(i)?;
                    let rj = self.index_ref(j)?;
                    self.eval(a)?;
                    let mut atoms = BTreeSet::new();
                    for r in [ri, rj].into_iter().flatten() {
                        atoms.insert(Atom {
                            base: Base::Index(r),
                            minus: BTreeSet::new(),
                        });
                    }
                    Ok(AbsSchema { atoms })
                }
                // full aggregation always produces a scalar
                Math::Sall(a) => {
                    self.eval(a)?;
                    Ok(AbsSchema::empty())
                }
                // LA-structural operators carry shapes, not schemas;
                // rules over them are outside this algebra
                Math::Unbind(_) | Math::MMul(_) | Math::LTrs(_) | Math::Srow(_) | Math::Scol(_) => {
                    Err(format!(
                        "LA-structural operator `{}` has no relational schema",
                        n.op_display()
                    ))
                }
            },
        }
    }
}

/// Hypotheses a rule declares, translated from its [`ConditionMeta`]s.
/// Returns `None` if any condition is opaque (unanalyzable).
fn declared_hypotheses(rule: &MathRewrite) -> Option<Vec<Hypothesis>> {
    let mut out = Vec::new();
    for meta in rule.condition_metas() {
        match meta {
            ConditionMeta::IndexNotInSchema { index, of } => out.push(Hypothesis::IndexFree {
                index: IndexRef::Var(*index),
                of: LeafRef::Var(*of),
            }),
            ConditionMeta::SchemaSubset { sub, sup } => out.push(Hypothesis::Absorbed {
                sub: LeafRef::Var(*sub),
                sup: LeafRef::Var(*sup),
            }),
            // value-level; the dropped-variable check consumes it
            ConditionMeta::IsZero { .. } => {}
            ConditionMeta::Opaque { .. } => return None,
        }
    }
    Some(out)
}

/// Candidate hypotheses that could possibly reconcile the two sides.
fn candidates(lhs: &AbsSchema, rhs: &AbsSchema) -> Vec<Hypothesis> {
    let mut out = BTreeSet::new();
    // every (subtracted index, leaf base) pair on either side
    for s in [lhs, rhs] {
        for atom in &s.atoms {
            if let Base::Leaf(l) = atom.base {
                for &m in &atom.minus {
                    out.insert(Hypothesis::IndexFree { index: m, of: l });
                }
            }
        }
    }
    // leaves present on exactly one side may be absorbable into a leaf
    // of the shared part
    let ll = lhs.leaves();
    let rl = rhs.leaves();
    for &sub in ll.symmetric_difference(&rl) {
        for &sup in ll.intersection(&rl) {
            out.insert(Hypothesis::Absorbed { sub, sup });
        }
    }
    out.into_iter().collect()
}

fn apply_all(s: &AbsSchema, hs: &[Hypothesis]) -> AbsSchema {
    let mut out = s.clone();
    // Absorption can only erase atoms, and IndexFree can only grow the
    // set of absorbable atoms — so apply IndexFree first, then iterate
    // absorption to a fixpoint.
    for h in hs
        .iter()
        .filter(|h| matches!(h, Hypothesis::IndexFree { .. }))
    {
        out = out.apply(h);
    }
    loop {
        let mut next = out.clone();
        for h in hs
            .iter()
            .filter(|h| matches!(h, Hypothesis::Absorbed { .. }))
        {
            next = next.apply(h);
        }
        if next == out {
            return out;
        }
        out = next;
    }
}

/// Run the schema pass on one rule.
///
/// Also returns lhs variables the rhs drops without a declared
/// [`ConditionMeta::IsZero`] justification (a separate violation: a rule
/// that deletes a matched sub-term must say why that is sound).
#[derive(Debug, Clone)]
pub struct SchemaReport {
    pub verdict: SchemaVerdict,
    /// Value-position lhs vars absent from the rhs and not declared zero.
    pub undeclared_drops: Vec<Var>,
    /// A variable used both as an index and as a value.
    pub role_conflict: Option<Var>,
    /// Declared schema hypotheses the algebra never needed (informational).
    pub unused_conditions: Vec<Hypothesis>,
}

pub fn check_schema(rule: &MathRewrite) -> SchemaReport {
    let mut report = SchemaReport {
        verdict: SchemaVerdict::NotAnalyzable(String::new()),
        undeclared_drops: Vec::new(),
        role_conflict: None,
        unused_conditions: Vec::new(),
    };
    let Some(rhs) = rule.rhs_pattern() else {
        report.verdict = SchemaVerdict::NotAnalyzable("dynamic applier".to_owned());
        return report;
    };
    let Some(declared) = declared_hypotheses(rule) else {
        report.verdict = SchemaVerdict::NotAnalyzable("opaque condition".to_owned());
        return report;
    };

    let mut li = Interp::new(rule.searcher.ast());
    let ls = li.eval(rule.searcher.ast().root());
    let mut ri = Interp::new(rhs.ast());
    let rs = ri.eval(rhs.ast().root());
    report.role_conflict = li.conflict.or(ri.conflict);

    // dropped-variable check: value-position lhs vars the rhs never
    // mentions need a declared zero justification
    let rhs_vars = rhs.vars();
    let zero_declared: Vec<Var> = rule
        .condition_metas()
        .filter_map(|m| match m {
            ConditionMeta::IsZero { var } => Some(*var),
            _ => None,
        })
        .collect();
    for (v, role) in &li.roles {
        if *role == Role::Value && !rhs_vars.contains(v) && !zero_declared.contains(v) {
            report.undeclared_drops.push(*v);
        }
    }

    let (ls, rs) = match (ls, rs) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(e), _) | (_, Err(e)) => {
            report.verdict = SchemaVerdict::NotAnalyzable(e);
            return report;
        }
    };

    if ls == rs {
        report.unused_conditions = declared;
        report.verdict = SchemaVerdict::Equal;
        return report;
    }

    // is any hypothesis set sufficient at all?
    let cands = candidates(&ls, &rs);
    if apply_all(&ls, &cands) != apply_all(&rs, &cands) {
        report.verdict = SchemaVerdict::Mismatch {
            lhs: ls.to_string(),
            rhs: rs.to_string(),
        };
        return report;
    }

    // greedy minimization: drop candidates that are not needed
    let mut needed = cands;
    let mut k = 0;
    while k < needed.len() {
        let mut trial = needed.clone();
        trial.remove(k);
        if apply_all(&ls, &trial) == apply_all(&rs, &trial) {
            needed = trial;
        } else {
            k += 1;
        }
    }

    let missing: Vec<Hypothesis> = needed
        .iter()
        .copied()
        .filter(|h| !declared.contains(h))
        .collect();
    report.unused_conditions = declared
        .iter()
        .copied()
        .filter(|h| !needed.contains(h))
        .collect();
    report.verdict = if missing.is_empty() {
        SchemaVerdict::EqualUnderConditions(needed)
    } else {
        SchemaVerdict::Undeclared { needed, missing }
    };
    report
}
