//! Plan extraction: greedy and ILP (Figure 11).
//!
//! * **Greedy** — the bottom-up pass of §4.3, via
//!   [`spores_egraph::Extractor`] with the [`crate::cost::NnzCost`]
//!   function. Fast, but double-counts shared subexpressions (Figure 10).
//! * **ILP** — the Figure 11 encoding: a boolean `B_op` per e-node and
//!   `B_c` per e-class, constraints `F(op) = B_op → ∧ B_child` and
//!   `G(c) = B_c → ∨ B_op`, root asserted, objective `min Σ B_op · C_op`.
//!   Because each `B_op` is paid once no matter how many parents use it,
//!   shared plans are costed correctly. Saturated e-graphs contain cycles
//!   (`A = A + 0`), which the boolean encoding cannot exclude a priori;
//!   we add *lazy* blocking clauses whenever the solution's justification
//!   is cyclic and re-solve, mirroring how ILP extractors over e-graphs
//!   handle well-foundedness.

use crate::analysis::MetaAnalysis;
use crate::cost::{node_cost, NnzCost};
use crate::lang::{Math, MathExpr};
use spores_egraph::{EGraph, Extractor, FxHashMap, Id, Language};
use spores_ilp::{Problem, SolveResult, Solver};

/// Statistics from an ILP extraction run.
#[derive(Clone, Debug, Default)]
pub struct IlpStats {
    pub n_vars: usize,
    pub n_clauses: usize,
    /// Number of solve rounds (1 = no cycle-blocking needed).
    pub rounds: usize,
    /// Whether the final round proved optimality.
    pub optimal: bool,
    /// The greedy plan's DAG cost used to warm-start branch-and-bound
    /// (`None` when the greedy plan could not be priced as a DAG).
    pub warm_start: Option<f64>,
}

/// Extract the cheapest plan greedily (§4.3's fast strategy).
pub fn extract_greedy(egraph: &EGraph<Math, MetaAnalysis>, root: Id) -> Option<(f64, MathExpr)> {
    let extractor = Extractor::new(egraph, NnzCost);
    extractor.find_best(root)
}

/// Multi-root greedy extraction: the cheapest term of every root built
/// into ONE shared plan (per-class choices are global, so a sub-plan
/// reachable from several roots appears once). Returns the plan's DAG
/// cost — each distinct selected operator paid once *across roots* —
/// the plan, and each root's node id within it.
///
/// Greedy choices still optimize per-class tree cost, so they can
/// double-pay: a class may locally prefer an unshared cheap member over
/// a slightly pricier one whose sub-plan another root already needs.
/// [`extract_ilp_multi`] fixes that.
pub fn extract_greedy_multi(
    egraph: &EGraph<Math, MetaAnalysis>,
    roots: &[Id],
) -> Option<(f64, MathExpr, Vec<Id>)> {
    let extractor = Extractor::new(egraph, NnzCost);
    let (expr, ids) = extractor.find_best_multi(roots)?;
    let cost = dag_cost(egraph, &expr);
    Some((cost, expr, ids))
}

/// Extract the cheapest plan with the ILP encoding of Figure 11.
///
/// Returns the plan, its cost (sum over *distinct* selected operators,
/// i.e. DAG cost), and solver statistics. `None` when the root has no
/// extractable representation.
pub fn extract_ilp(
    egraph: &EGraph<Math, MetaAnalysis>,
    root: Id,
    solver: &Solver,
) -> Option<(f64, MathExpr, IlpStats)> {
    let (cost, expr, _, stats) = extract_ilp_multi(egraph, &[root], solver)?;
    Some((cost, expr, stats))
}

/// Multi-root ILP extraction (the workload-level Figure 11 encoding).
///
/// One boolean program covers the whole workload: every root's class is
/// asserted reachable (`B_c(root_k) = 1` for all k), the `F`/`G`
/// implication clauses are shared, and the objective sums each `B_op`
/// once — so a sub-plan selected on behalf of two roots is *paid for
/// once*, which is exactly the cross-statement CSE the per-statement
/// encoding cannot express. Cyclic justifications are excluded lazily
/// per the multi-root walk, and the branch-and-bound warm-starts from
/// the greedy multi-root plan's DAG cost.
pub fn extract_ilp_multi(
    egraph: &EGraph<Math, MetaAnalysis>,
    roots: &[Id],
    solver: &Solver,
) -> Option<(f64, MathExpr, Vec<Id>, IlpStats)> {
    let roots: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();

    // Eligibility fixpoint: reuse the greedy extractor — a class is
    // extractable iff greedy found any finite-cost term for it.
    let greedy = Extractor::new(egraph, NnzCost);
    for &root in &roots {
        greedy.best_cost(root)?;
    }

    // Warm start: the greedy multi-root plan is an achievable solution of
    // the ILP (select exactly its operators), so its DAG cost — each
    // distinct operator paid once across all roots, the objective the ILP
    // minimizes — is an incumbent upper bound. Branch-and-bound prunes
    // any branch that already costs more, long before it finds its first
    // own incumbent.
    let warm_start = greedy
        .find_best_multi(&roots)
        .map(|(expr, _)| dag_cost(egraph, &expr));

    // ---- variables -----------------------------------------------------
    let mut problem = Problem::new();
    let mut class_var: FxHashMap<Id, u32> = FxHashMap::default();
    // (class, node index within class) for each op var
    let mut ops: Vec<(Id, usize)> = Vec::new();
    let mut op_var: FxHashMap<(Id, usize), u32> = FxHashMap::default();

    for class in egraph.classes() {
        let id = egraph.find(class.id);
        if greedy.best_cost(id).is_none() {
            continue; // inextricable class: no variables (§3.2 pruning)
        }
        let c = problem.add_var(0.0);
        class_var.insert(id, c);
    }
    for class in egraph.classes() {
        let id = egraph.find(class.id);
        if !class_var.contains_key(&id) {
            continue;
        }
        let meta = &class.data;
        for (ni, node) in class.nodes.iter().enumerate() {
            let own = node_cost(meta, node);
            if !own.is_finite() {
                continue;
            }
            // every child class must itself be extractable
            if !node
                .children()
                .iter()
                .all(|&ch| class_var.contains_key(&egraph.find(ch)))
            {
                continue;
            }
            let v = problem.add_var(own);
            op_var.insert((id, ni), v);
            ops.push((id, ni));
        }
    }

    // ---- constraints (Figure 11) ----------------------------------------
    for &(cid, ni) in &ops {
        let v = op_var[&(cid, ni)];
        let node = &egraph.class(cid).nodes[ni];
        // F(op): selecting an operator selects all its children classes
        for &ch in node.children() {
            problem.imply(v, class_var[&egraph.find(ch)]);
        }
    }
    for (&cid, &cv) in &class_var {
        // G(c): a selected class needs at least one of its operators
        let members: Vec<u32> = egraph
            .class(cid)
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(ni, _)| op_var.get(&(cid, ni)).copied())
            .collect();
        debug_assert!(!members.is_empty());
        problem.imply_any(cv, &members);
    }
    // per-root reachability: every statement's class must be realized
    for &root in &roots {
        problem.require(class_var[&root]);
    }

    let mut stats = IlpStats {
        n_vars: problem.n_vars() as usize,
        n_clauses: problem.clauses.len(),
        rounds: 0,
        optimal: false,
        warm_start,
    };

    // ---- solve, lazily excluding cyclic justifications -------------------
    // `solver.time_limit` is the *total* extraction budget: rounds share
    // the deadline, so lazy re-solves cannot multiply it.
    const MAX_ROUNDS: usize = 64;
    let deadline = std::time::Instant::now() + solver.time_limit;
    for _ in 0..MAX_ROUNDS {
        stats.rounds += 1;
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return greedy_fallback(egraph, &roots, stats);
        }
        let round_solver = Solver {
            time_limit: remaining,
            upper_bound: match (solver.upper_bound, warm_start) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            ..solver.clone()
        };
        let result = round_solver.solve(&problem);
        let (solution, optimal) = match &result {
            SolveResult::Optimal(s) => (s, true),
            SolveResult::Unknown(Some(s)) => (s, false),
            _ => return greedy_fallback(egraph, &roots, stats),
        };
        stats.optimal = optimal;

        // chosen op per class: the cheapest selected one
        let chosen = |cid: Id| -> Option<usize> {
            let class = egraph.class(cid);
            let mut best: Option<(f64, usize)> = None;
            for (ni, _node) in class.nodes.iter().enumerate() {
                if let Some(&v) = op_var.get(&(cid, ni)) {
                    if solution.assignment[v as usize] {
                        let c = problem.objective[v as usize];
                        if best.is_none_or(|(bc, _)| c < bc) {
                            best = Some((c, ni));
                        }
                    }
                }
            }
            best.map(|(_, ni)| ni)
        };

        match build_acyclic(egraph, &roots, &chosen) {
            Ok((expr, ids)) => {
                let cost = solution.cost;
                return Some((cost, expr, ids, stats));
            }
            Err(cycle) => {
                // ban this particular cyclic justification and re-solve
                let vars: Vec<u32> = cycle.iter().map(|&(cid, ni)| op_var[&(cid, ni)]).collect();
                problem.forbid_all(&vars);
                stats.n_clauses += 1;
            }
        }
    }
    greedy_fallback(egraph, &roots, stats)
}

fn greedy_fallback(
    egraph: &EGraph<Math, MetaAnalysis>,
    roots: &[Id],
    mut stats: IlpStats,
) -> Option<(f64, MathExpr, Vec<Id>, IlpStats)> {
    stats.optimal = false;
    let (cost, expr, ids) = extract_greedy_multi(egraph, roots)?;
    Some((cost, expr, ids, stats))
}

/// `(class, node index)` ops lying on a cyclic justification.
type CycleOps = Vec<(Id, usize)>;

/// Walk the chosen ops from every root into one shared expression (one
/// memo across roots, so shared selections materialize once); `Err`
/// carries the ops on a cycle.
fn build_acyclic(
    egraph: &EGraph<Math, MetaAnalysis>,
    roots: &[Id],
    chosen: &dyn Fn(Id) -> Option<usize>,
) -> Result<(MathExpr, Vec<Id>), CycleOps> {
    enum State {
        OnStack,
        Done(Id),
    }
    fn go(
        egraph: &EGraph<Math, MetaAnalysis>,
        cid: Id,
        chosen: &dyn Fn(Id) -> Option<usize>,
        expr: &mut MathExpr,
        state: &mut FxHashMap<Id, State>,
        stack: &mut Vec<(Id, usize)>,
    ) -> Result<Id, Vec<(Id, usize)>> {
        let cid = egraph.find(cid);
        match state.get(&cid) {
            Some(State::Done(id)) => return Ok(*id),
            Some(State::OnStack) => {
                // collect the cycle: everything on the stack from the
                // first occurrence of cid
                let pos = stack
                    .iter()
                    .position(|&(c, _)| c == cid)
                    .expect("cid is on stack");
                return Err(stack[pos..].to_vec());
            }
            None => {}
        }
        let ni = chosen(cid).ok_or_else(|| stack.clone())?;
        state.insert(cid, State::OnStack);
        stack.push((cid, ni));
        let node = egraph.class(cid).nodes[ni].clone();
        let mut child_ids = Vec::with_capacity(node.children().len());
        for &ch in node.children() {
            child_ids.push(go(egraph, ch, chosen, expr, state, stack)?);
        }
        stack.pop();
        let mut k = 0;
        let node = node.map_children(|_| {
            let id = child_ids[k];
            k += 1;
            id
        });
        let id = expr.add(node);
        state.insert(cid, State::Done(id));
        Ok(id)
    }

    let mut expr = MathExpr::default();
    let mut state = FxHashMap::default();
    let mut stack = Vec::new();
    let mut ids = Vec::with_capacity(roots.len());
    for &root in roots {
        ids.push(go(egraph, root, chosen, &mut expr, &mut state, &mut stack)?);
    }
    Ok((expr, ids))
}

/// DAG cost of a concrete plan: each distinct node paid once.
/// (The metric the ILP optimizes; useful to compare with greedy.)
pub fn dag_cost(egraph: &EGraph<Math, MetaAnalysis>, expr: &MathExpr) -> f64 {
    // Re-associate each plan node with its class to price it.
    let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
    let mut total = 0.0;
    let mut seen: std::collections::HashSet<(Id, std::mem::Discriminant<Math>)> =
        std::collections::HashSet::new();
    for node in expr.nodes() {
        let canon = node.clone().map_children(|c| ids[c.index()]);
        let cid = egraph
            .lookup(canon.clone())
            .expect("extracted node must exist in the e-graph");
        if seen.insert((cid, std::mem::discriminant(node))) {
            total += node_cost(&egraph.class(cid).data, &canon);
        }
        ids.push(cid);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Context, MathGraph, MetaAnalysis, VarMeta};
    use crate::lang::parse_math;
    use crate::rules::default_rules;
    use spores_egraph::Scheduler;

    fn ctx() -> Context {
        Context::new()
            .with_var("X", VarMeta::sparse(1000, 500, 0.001))
            .with_var("U", VarMeta::dense(1000, 1))
            .with_var("V", VarMeta::dense(500, 1))
            .with_index("i", 1000)
            .with_index("j", 500)
    }

    fn saturated(src: &str) -> (spores_egraph::Id, MathGraph) {
        let expr = parse_math(src).unwrap();
        let runner = spores_egraph::Runner::new(MetaAnalysis::new(ctx()))
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_node_limit(20_000)
            .with_iter_limit(12)
            .run(&default_rules());
        (runner.roots[0], runner.egraph)
    }

    #[test]
    fn ilp_matches_greedy_on_tree_plans() {
        // no sharing: both extractors must find the same optimum
        let (root, eg) = saturated("(sum j (* (b i j X) (b j _ V)))");
        let (gc, ge) = extract_greedy(&eg, root).unwrap();
        let (ic, ie, stats) = extract_ilp(&eg, root, &Solver::default()).unwrap();
        assert!(stats.optimal);
        assert!(
            (gc - ic).abs() < 1e-6,
            "greedy {gc} ({ge}) vs ilp {ic} ({ie})"
        );
    }

    #[test]
    fn ilp_never_worse_than_greedy() {
        for src in [
            "(* (b i j X) (* (b i _ U) (b j _ V)))",
            "(sum i (sum j (* (b i j X) (* (b i _ U) (b j _ V)))))",
            "(+ (* (b i j X) (b i j X)) (* (b i j X) (b i j X)))",
        ] {
            let (root, eg) = saturated(src);
            let (gc, _) = extract_greedy(&eg, root).unwrap();
            let (ic, expr, _) = extract_ilp(&eg, root, &Solver::default()).unwrap();
            // ILP optimizes DAG cost; greedy tree cost is an upper bound
            assert!(ic <= gc + 1e-6, "{src}: ilp {ic} > greedy {gc}");
            // the extracted plan must still be in the root class
            assert_eq!(
                eg.lookup_expr(&expr).map(|i| eg.find(i)),
                Some(eg.find(root))
            );
        }
    }

    #[test]
    fn warm_start_bound_is_recorded_and_respected() {
        let (root, eg) = saturated("(sum i (sum j (* (b i j X) (* (b i _ U) (b j _ V)))))");
        let (ic, _, stats) = extract_ilp(&eg, root, &Solver::default()).unwrap();
        let ub = stats.warm_start.expect("greedy warm start recorded");
        assert!(stats.optimal);
        // the ILP optimum can never exceed the greedy plan's DAG cost
        assert!(ic <= ub + 1e-6, "ilp {ic} > warm-start bound {ub}");
    }

    #[test]
    fn ilp_handles_cycles_from_saturation() {
        // saturation introduces A = A·1-style cycles via constant folding
        let (root, eg) = saturated("(+ (b i j X) 0)");
        let (_, expr, stats) = extract_ilp(&eg, root, &Solver::default()).unwrap();
        assert!(stats.rounds >= 1);
        // must extract the plain leaf, not the cyclic justification
        assert_eq!(expr.to_string(), "(b i j X)");
    }

    #[test]
    fn ilp_exploits_sharing() {
        // (U⊗V) appears twice; greedy pays it twice, ILP once. Build the
        // e-graph without rules so the sharing structure is fixed.
        let mut eg = MathGraph::new(MetaAnalysis::new(ctx()));
        let outer = "(* (b i _ U) (b j _ V))";
        let src = format!("(+ (* (b i j X) {outer}) {outer})");
        let root = eg.add_expr(&parse_math(&src).unwrap());
        eg.rebuild();
        let (gc, _) = extract_greedy(&eg, root).unwrap();
        let (ic, _, stats) = extract_ilp(&eg, root, &Solver::default()).unwrap();
        assert!(stats.optimal);
        let outer_nnz = 1000.0 * 500.0;
        assert!(
            gc - ic >= outer_nnz - 1.0,
            "sharing must save ~one dense outer product: greedy {gc}, ilp {ic}"
        );
    }

    #[test]
    fn multi_root_greedy_counts_shared_subplans_once() {
        // both roots contain the dense outer product; the multi-root DAG
        // cost must pay it once, i.e. be well below the per-root sum
        let outer = "(* (b i _ U) (b j _ V))";
        let mut eg = MathGraph::new(MetaAnalysis::new(ctx()));
        let r1 = eg.add_expr(&parse_math(&format!("(* (b i j X) {outer})")).unwrap());
        let r2 = eg.add_expr(&parse_math(&format!("(+ (b i j X) {outer})")).unwrap());
        eg.rebuild();
        let (c1, _) = extract_greedy(&eg, r1).unwrap();
        let (c2, _) = extract_greedy(&eg, r2).unwrap();
        let (multi, expr, ids) = extract_greedy_multi(&eg, &[r1, r2]).unwrap();
        assert_eq!(ids.len(), 2);
        let outer_nnz = 1000.0 * 500.0;
        assert!(
            c1 + c2 - multi >= outer_nnz - 1.0,
            "shared outer product must be paid once: {c1} + {c2} vs {multi} ({expr})"
        );
    }

    #[test]
    fn multi_root_ilp_never_worse_than_multi_root_greedy() {
        let (ra, eg1) = saturated("(sum j (* (b i j X) (b j _ V)))");
        // a second root inside the same saturated graph
        let mut eg = eg1;
        let rb = eg.add_expr(&parse_math("(* (b i j X) (b i _ U))").unwrap());
        eg.rebuild();
        let (gc, _, _) = extract_greedy_multi(&eg, &[ra, rb]).unwrap();
        let (ic, expr, ids, stats) = extract_ilp_multi(&eg, &[ra, rb], &Solver::default()).unwrap();
        assert!(stats.optimal);
        assert_eq!(ids.len(), 2);
        assert!(ic <= gc + 1e-6, "ilp {ic} > greedy {gc} ({expr})");
        // warm start bound from the greedy multi-root plan is recorded
        let ub = stats.warm_start.expect("warm start recorded");
        assert!(ic <= ub + 1e-6);
    }

    #[test]
    fn extracts_factored_form_for_sparse_input() {
        // Σ_ij (X · (U⊗V)): joining X first keeps everything sparse
        let (root, eg) = saturated("(sum i (sum j (* (b i j X) (* (b i _ U) (b j _ V)))))");
        let (cost, expr, stats) = extract_ilp(&eg, root, &Solver::default()).unwrap();
        assert!(stats.optimal);
        // the dense outer product has nnz 500_000; a sparse plan stays ≈ 500
        assert!(cost < 5000.0, "cost {cost}, plan {expr}");
    }
}
