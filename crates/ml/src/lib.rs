//! The five evaluation workloads of the paper (§4.2) and the harness
//! that compiles them under `base` / `opt2` / SPORES and executes them.

pub mod runner;
pub mod workloads;

pub use runner::{
    compile, compile_with_service, execute, run, statement_requests, CompileReport, Compiled, Mode,
    RunReport,
};
pub use workloads::{als, figure15_suite, glm, mlr, pnmf, svm, Scale, Statement, Workload};
