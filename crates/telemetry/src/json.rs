//! A minimal JSON parser, just enough for the Chrome-trace schema
//! checker ([`crate::validate_chrome_trace`]) to re-read what
//! [`crate::chrome_trace_json`] (or a compatible tool) wrote. Offline
//! environment — no serde — so this is hand-rolled: objects, arrays,
//! strings with the standard escapes, numbers, booleans, null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document. Errors carry a byte offset and a
/// short description.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{} at byte {}", msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input is valid UTF-8
                    // by construction: it came from &str).
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// Escape a string for embedding in JSON output (used by the exporters).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"traceEvents":[{"name":"a b","ts":1.5,"ok":true,"n":null},[-2e3]]}"#;
        let v = parse_json(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("a b"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(events[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(events[0].get("n"), Some(&Json::Null));
        assert_eq!(events[1].as_arr().unwrap()[0].as_f64(), Some(-2000.0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse_json(r#""a\n\t\"\\ \u00e9 \ud83d\ude00 é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀 é"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"\\ud800\"").is_err());
    }

    #[test]
    fn roundtrips_escaped_output() {
        let mut out = String::new();
        escape_into(&mut out, "line\nquote\" back\\ tab\t ctrl\u{1}");
        let v = parse_json(&out).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\" back\\ tab\t ctrl\u{1}"));
    }
}
