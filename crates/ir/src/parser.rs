//! A small DML/R-like expression parser.
//!
//! The Figure 14 rewrite corpus and the ML workloads are written in the
//! same surface syntax SystemML scripts use, e.g.
//! `sum((X - U %*% t(V))^2)` or `colSums(X * Y)`. This module parses that
//! syntax into an [`ExprArena`] DAG.
//!
//! Operator precedence (loosest to tightest), mirroring R/DML:
//! comparisons < `+ -` < `* /` < `%*%` < unary `-` < `^` (right-assoc).

use crate::arena::{BinOp, ExprArena, NodeId, UnOp};
use std::fmt;

/// Parse failure with a byte offset into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            b'+' => {
                toks.push((Tok::Op("+"), i));
                i += 1;
            }
            b'-' => {
                toks.push((Tok::Op("-"), i));
                i += 1;
            }
            b'*' => {
                toks.push((Tok::Op("*"), i));
                i += 1;
            }
            b'/' => {
                toks.push((Tok::Op("/"), i));
                i += 1;
            }
            b'^' => {
                toks.push((Tok::Op("^"), i));
                i += 1;
            }
            b'%' => {
                if src[i..].starts_with("%*%") {
                    toks.push((Tok::Op("%*%"), i));
                    i += 3;
                } else {
                    return Err(ParseError {
                        message: "expected %*%".into(),
                        offset: i,
                    });
                }
            }
            b'>' | b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Op(if c == b'>' { ">=" } else { "<=" }), i));
                    i += 2;
                } else {
                    toks.push((Tok::Op(if c == b'>' { ">" } else { "<" }), i));
                    i += 1;
                }
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_digit() || b[i] == b'.' || b[i] == b'e' || b[i] == b'E')
                {
                    // allow exponent sign
                    if (b[i] == b'e' || b[i] == b'E')
                        && matches!(b.get(i + 1), Some(b'+') | Some(b'-'))
                    {
                        i += 1;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let v: f64 = text.parse().map_err(|_| ParseError {
                    message: format!("bad number `{text}`"),
                    offset: start,
                })?;
                toks.push((Tok::Num(v), start));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_owned()), start));
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character `{}`", c as char),
                    offset: i,
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    arena: &'a mut ExprArena,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(self.src_len, |&(_, o)| o)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let off = self.offset();
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            got => Err(ParseError {
                message: format!("expected {want:?}, got {got:?}"),
                offset: off,
            }),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    /// Pratt loop: parse a right operand chain with binding power ≥ `min_bp`.
    fn expr_bp(&mut self, min_bp: u8) -> Result<NodeId, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(&Tok::Op(op)) = self.peek() {
            let (lbp, rbp, bin) = match op {
                ">" => (2, 3, BinOp::Gt),
                "<" => (2, 3, BinOp::Lt),
                ">=" => (2, 3, BinOp::Ge),
                "<=" => (2, 3, BinOp::Le),
                "+" => (4, 5, BinOp::Add),
                "-" => (4, 5, BinOp::Sub),
                "*" => (6, 7, BinOp::Mul),
                "/" => (6, 7, BinOp::Div),
                "%*%" => (8, 9, BinOp::MatMul),
                "^" => (13, 12, BinOp::Pow), // right-assoc
                _ => return self.err(format!("unknown operator {op}")),
            };
            if lbp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.expr_bp(rbp)?;
            lhs = self.arena.bin(bin, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<NodeId, ParseError> {
        if let Some(Tok::Op("-")) = self.peek() {
            self.bump();
            // unary minus binds tighter than * but looser than ^
            let inner = self.expr_bp(11)?;
            return Ok(self.arena.un(UnOp::Neg, inner));
        }
        if let Some(Tok::Op("+")) = self.peek() {
            self.bump();
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<NodeId, ParseError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Num(v)) => Ok(self.arena.lit(v)),
            Some(Tok::LParen) => {
                let e = self.expr_bp(0)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = vec![self.expr_bp(0)?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        args.push(self.expr_bp(0)?);
                    }
                    self.expect(&Tok::RParen)?;
                    self.call(&name, args, off)
                } else {
                    Ok(self.arena.var(name.as_str()))
                }
            }
            got => Err(ParseError {
                message: format!("expected expression, got {got:?}"),
                offset: off,
            }),
        }
    }

    fn call(&mut self, name: &str, args: Vec<NodeId>, off: usize) -> Result<NodeId, ParseError> {
        let unary = |p: &mut Self, op: UnOp, args: &[NodeId]| -> Result<NodeId, ParseError> {
            if args.len() != 1 {
                return Err(ParseError {
                    message: format!("{name} expects 1 argument, got {}", args.len()),
                    offset: off,
                });
            }
            Ok(p.arena.un(op, args[0]))
        };
        match name {
            "t" => unary(self, UnOp::T, &args),
            "sum" => unary(self, UnOp::Sum, &args),
            "rowSums" => unary(self, UnOp::RowSums, &args),
            "colSums" => unary(self, UnOp::ColSums, &args),
            "exp" => unary(self, UnOp::Exp, &args),
            "log" => unary(self, UnOp::Log, &args),
            "sqrt" => unary(self, UnOp::Sqrt, &args),
            "abs" => unary(self, UnOp::Abs, &args),
            "sign" => unary(self, UnOp::Sign, &args),
            "sigmoid" => unary(self, UnOp::Sigmoid, &args),
            "sprop" => unary(self, UnOp::Sprop, &args),
            "matrix" => {
                if args.len() != 3 {
                    return Err(ParseError {
                        message: "matrix expects 3 arguments (value, rows, cols)".into(),
                        offset: off,
                    });
                }
                let as_num = |p: &Self, id: NodeId| -> Option<f64> {
                    match p.arena.node(id) {
                        crate::arena::LaNode::Scalar(n) => Some(n.get()),
                        _ => None,
                    }
                };
                match (
                    as_num(self, args[0]),
                    as_num(self, args[1]),
                    as_num(self, args[2]),
                ) {
                    (Some(v), Some(r), Some(c)) => Ok(self.arena.fill(v, r as u64, c as u64)),
                    _ => Err(ParseError {
                        message: "matrix() arguments must be literals".into(),
                        offset: off,
                    }),
                }
            }
            "min" | "max" => {
                if args.len() != 2 {
                    return Err(ParseError {
                        message: format!("{name} expects 2 arguments"),
                        offset: off,
                    });
                }
                let op = if name == "min" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                Ok(self.arena.bin(op, args[0], args[1]))
            }
            _ => Err(ParseError {
                message: format!("unknown function `{name}`"),
                offset: off,
            }),
        }
    }
}

/// Parse a DML-like expression into `arena`, returning the root node.
pub fn parse_expr(arena: &mut ExprArena, src: &str) -> Result<NodeId, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        arena,
        src_len: src.len(),
    };
    let root = p.expr_bp(0)?;
    if p.pos != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::LaNode;

    fn roundtrip(src: &str) -> String {
        let mut a = ExprArena::new();
        let root = parse_expr(&mut a, src).unwrap();
        a.display(root)
    }

    #[test]
    fn precedence() {
        assert_eq!(roundtrip("a + b * c"), "a + b * c");
        assert_eq!(roundtrip("(a + b) * c"), "(a + b) * c");
        assert_eq!(roundtrip("a %*% b + c"), "a %*% b + c");
        assert_eq!(roundtrip("a %*% (b + c)"), "a %*% (b + c)");
        // %*% binds tighter than *, so no parens are needed on re-print
        assert_eq!(roundtrip("a * b %*% c"), "a * b %*% c");
    }

    #[test]
    fn pow_right_assoc_and_tight() {
        let mut a = ExprArena::new();
        let r1 = parse_expr(&mut a, "x^2^3").unwrap();
        let r2 = parse_expr(&mut a, "x^(2^3)").unwrap();
        assert_eq!(r1, r2);
        let r3 = parse_expr(&mut a, "-x^2").unwrap();
        let r4 = parse_expr(&mut a, "-(x^2)").unwrap();
        assert_eq!(r3, r4);
    }

    #[test]
    fn functions() {
        assert_eq!(roundtrip("t(X)"), "t(X)");
        assert_eq!(roundtrip("sum(rowSums(X))"), "sum(rowSums(X))");
        assert_eq!(roundtrip("min(X, Y)"), "min(X, Y)");
        assert_eq!(
            roundtrip("sum((X - U %*% t(V))^2)"),
            "sum((X - U %*% t(V))^2)"
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(roundtrip("X > 0"), "X > 0");
        assert_eq!(roundtrip("(X > 0) - (X < 0)"), "(X > 0) - (X < 0)");
    }

    #[test]
    fn numbers() {
        let mut a = ExprArena::new();
        let r = parse_expr(&mut a, "1.5e2").unwrap();
        match a.node(r) {
            LaNode::Scalar(n) => assert_eq!(n.get(), 150.0),
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn shared_subexpressions_after_parse() {
        let mut a = ExprArena::new();
        let r = parse_expr(&mut a, "(U %*% t(V)) * (U %*% t(V))").unwrap();
        // hash-consing merges the two UV^T occurrences:
        // U, V, t(V), U%*%t(V), mul — 5 distinct nodes
        assert_eq!(a.dag_size(r), 5);
    }

    #[test]
    fn parse_errors() {
        let mut a = ExprArena::new();
        assert!(parse_expr(&mut a, "").is_err());
        assert!(parse_expr(&mut a, "a +").is_err());
        assert!(parse_expr(&mut a, "a b").is_err());
        assert!(parse_expr(&mut a, "foo(a)").is_err());
        assert!(parse_expr(&mut a, "a % b").is_err());
        assert!(parse_expr(&mut a, "(a").is_err());
    }

    #[test]
    fn unary_minus() {
        assert_eq!(roundtrip("-X"), "-X");
        assert_eq!(roundtrip("-(X + Y)"), "-(X + Y)");
        assert_eq!(roundtrip("a - -b"), "a - -b");
    }
}
