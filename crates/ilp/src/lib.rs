//! A 0-1 integer linear program solver (branch & bound).
//!
//! Replaces Gurobi in the SPORES pipeline. The extraction encoding of
//! Figure 11 uses only three constraint forms, all expressible as CNF
//! clauses over boolean variables:
//!
//! * `B_op → B_c` for every child class of an operator (implications),
//! * `B_c → B_op1 ∨ … ∨ B_opk` (at-least-one-member),
//! * `B_root` (the root class must be selected),
//!
//! plus — for lazy cycle elimination — blocking clauses
//! `¬(B_op1 ∧ … ∧ B_opn)`. The objective `min Σ B_op·C_op` has
//! non-negative weights, so the partial cost of a branch is a valid lower
//! bound and exhaustive branch & bound with unit propagation solves the
//! paper-scale instances (expression DAGs of ≤ ~15 operators, §4.3)
//! exactly in well under a millisecond.

#![forbid(unsafe_code)]

pub mod problem;
pub mod solver;

pub use problem::{Clause, Lit, Problem};
pub use solver::{Solution, SolveResult, Solver};
