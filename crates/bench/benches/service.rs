//! Optimizer-service benchmarks: cold pipeline vs. warm plan cache on
//! the §4.2 workload statements, plus multi-thread warm throughput
//! scaling.
//!
//! Modes:
//!
//! * plain `cargo bench --bench service` — criterion cold/warm latency
//!   benches per workload;
//! * `-- --smoke` — one quick cold/warm pass per workload asserting the
//!   acceptance bar (warm ≥ 10× faster than cold, 100% hit rate on the
//!   second compile); run by CI;
//! * `-- --snapshot` / `--snapshot-only` — additionally rewrite the
//!   committed `BENCH_service.json` (cold/warm latency, hit rates,
//!   thread-scaling throughput).

use criterion::{criterion_group, Criterion};
use spores_core::OptimizerConfig;
use spores_ml::workloads::{self, Workload};
use spores_service::{OptimizerService, Request, ServiceConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The 8-thread warm rate may not drop below this fraction of the
/// 2-thread rate — the regression bar for the warm-path scaling
/// collapse this bench once exhibited (22.2k req/s at 2 threads falling
/// to 16.9k at 8 when every probe took an exclusive shard lock).
const SCALING_FLOOR: f64 = 0.9;

/// Tolerance for the 1→4-thread "monotone non-decreasing" check
/// (throughput is noisy at bench scale; only real dips should fail).
const MONOTONE_SLACK: f64 = 0.9;

/// Physical parallelism actually available to this process.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The benchmark roster: the four cache-relevant evaluation workloads.
fn roster() -> Vec<Workload> {
    vec![
        workloads::als(200, 100, 8, 41),
        workloads::pnmf(150, 120, 8, 42),
        workloads::glm(200, 40, 43),
        workloads::mlr(200, 20, 44),
    ]
}

/// The per-statement service requests of a workload (shared with
/// `compile_with_service`, so the bench measures the real request stream).
fn statement_requests(w: &Workload) -> Vec<Request> {
    spores_ml::runner::statement_requests(w)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

fn service(workers: usize) -> OptimizerService {
    OptimizerService::new(ServiceConfig {
        optimizer: OptimizerConfig {
            node_limit: 8_000,
            iter_limit: 15,
            ..OptimizerConfig::default()
        },
        workers,
        ..ServiceConfig::default()
    })
}

/// Optimize every statement once against a fresh service (all misses).
fn run_cold(requests: &[Request]) -> Duration {
    let svc = service(1);
    let t0 = Instant::now();
    for r in requests {
        black_box(svc.optimize(r.clone()).expect("cold optimize"));
    }
    t0.elapsed()
}

/// Optimize every statement against a pre-warmed service (all hits).
fn run_warm(svc: &OptimizerService, requests: &[Request]) -> Duration {
    let t0 = Instant::now();
    for r in requests {
        black_box(svc.optimize(r.clone()).expect("warm optimize"));
    }
    t0.elapsed()
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    for w in roster() {
        let requests = statement_requests(&w);
        let mut group = c.benchmark_group(&format!("service/{}", w.name.to_lowercase()));
        group.sample_size(10);
        group.bench_function("cold", |b| b.iter(|| run_cold(&requests)));
        let svc = service(2);
        run_warm(&svc, &requests); // warm the cache
        group.bench_function("warm", |b| b.iter(|| run_warm(&svc, &requests)));
        group.finish();
    }
}

/// Warm throughput with `threads` hammering the same shapes.
fn warm_throughput(threads: usize, rounds: usize) -> f64 {
    let all: Vec<Request> = roster().iter().flat_map(statement_requests).collect();
    let svc = Arc::new(service(4));
    for r in &all {
        svc.optimize(r.clone()).expect("warmup");
    }
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let svc = svc.clone();
            let all = all.clone();
            std::thread::spawn(move || {
                for i in 0..rounds {
                    let r = &all[(t + i) % all.len()];
                    black_box(svc.optimize(r.clone()).expect("warm request"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench thread");
    }
    let total = (threads * rounds) as f64;
    total / t0.elapsed().as_secs_f64()
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/warm_scaling");
    group.sample_size(5);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("{threads}_threads"), |b| {
            b.iter(|| warm_throughput(threads, 20));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_scaling);

/// One cold/warm pass per workload; returns per-workload numbers.
struct SmokeRow {
    name: &'static str,
    statements: usize,
    cold_ns: u64,
    warm_ns: u64,
    speedup: f64,
    warm_hit_rate: f64,
}

fn smoke_rows() -> Vec<SmokeRow> {
    roster()
        .into_iter()
        .map(|w| {
            let requests = statement_requests(&w);
            let cold = run_cold(&requests);
            let svc = service(2);
            run_warm(&svc, &requests); // prime
            const REPS: u32 = 5;
            let primed = svc.stats();
            let mut warm = Duration::ZERO;
            for _ in 0..REPS {
                warm += run_warm(&svc, &requests);
            }
            let warm = warm / REPS;
            let stats = svc.stats();
            let warm_requests = u64::from(REPS) * requests.len() as u64;
            let hits = (stats.hits + stats.coalesced) - (primed.hits + primed.coalesced);
            SmokeRow {
                name: w.name,
                statements: requests.len(),
                cold_ns: cold.as_nanos() as u64,
                warm_ns: warm.as_nanos() as u64,
                speedup: cold.as_nanos() as f64 / warm.as_nanos().max(1) as f64,
                warm_hit_rate: hits as f64 / warm_requests.max(1) as f64,
            }
        })
        .collect()
}

fn smoke() {
    let mut worst = f64::INFINITY;
    for row in smoke_rows() {
        println!(
            "service smoke {:>5}: {} statements  cold {:>10} ns  warm {:>9} ns  speedup {:>7.1}x  warm hit rate {:.2}",
            row.name, row.statements, row.cold_ns, row.warm_ns, row.speedup, row.warm_hit_rate
        );
        worst = worst.min(row.speedup);
        assert!(
            (row.warm_hit_rate - 1.0).abs() < 1e-9,
            "{}: warm compiles must be all hits, got {}",
            row.name,
            row.warm_hit_rate
        );
    }
    assert!(
        worst >= 10.0,
        "acceptance: warm cache must be ≥ 10× faster than the cold pipeline, got {worst:.1}×"
    );
    println!("service smoke OK: worst warm speedup {worst:.1}x (bar: 10x)");
    scaling_guard();
}

/// Warm throughput across thread counts with the regression bar: on a
/// multi-core host, 1→4 threads must be monotone non-decreasing (within
/// noise) and 8 threads must hold ≥ 0.9× the 2-thread rate. Skipped on
/// single-core hosts, where extra threads only measure fan-out
/// overhead, not contention (the same footgun the snapshot's
/// `host_cores` field documents).
fn scaling_guard() {
    let cores = host_cores();
    if cores == 1 {
        println!(
            "service smoke: SKIP warm-scaling assertion: host_cores == 1, \
             multi-thread throughput would only measure fan-out overhead, not speedup"
        );
        return;
    }
    let rps: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| (threads, warm_throughput(threads, 25)))
        .collect();
    for &(threads, r) in &rps {
        println!("service smoke scaling: {threads} threads → {r:.0} req/s");
    }
    for pair in rps[..3].windows(2) {
        let ((lo_t, lo), (hi_t, hi)) = (pair[0], pair[1]);
        assert!(
            hi >= lo * MONOTONE_SLACK,
            "warm throughput regressed {lo_t}→{hi_t} threads: {lo:.0} → {hi:.0} req/s"
        );
    }
    let two = rps[1].1;
    let eight = rps[3].1;
    assert!(
        eight >= two * SCALING_FLOOR,
        "warm-path scaling collapse: 8 threads at {eight:.0} req/s < \
         {SCALING_FLOOR}× the 2-thread rate ({two:.0} req/s)"
    );
}

/// Write the `BENCH_service.json` snapshot to the repo root.
fn emit_snapshot() {
    let rows = smoke_rows();
    let mut entries = Vec::new();
    for row in &rows {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"statements\": {},\n",
                "      \"cold_ns\": {},\n",
                "      \"warm_ns\": {},\n",
                "      \"speedup\": {:.1},\n",
                "      \"warm_hit_rate\": {:.3}\n",
                "    }}"
            ),
            row.name, row.statements, row.cold_ns, row.warm_ns, row.speedup, row.warm_hit_rate
        ));
    }
    let mut scaling = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let rps = warm_throughput(threads, 25);
        println!("service snapshot scaling: {threads} threads → {rps:.0} req/s");
        scaling.push(format!(
            "    {{ \"threads\": {threads}, \"warm_requests_per_sec\": {rps:.0} }}"
        ));
    }
    if host_cores() == 1 {
        println!(
            "service snapshot: host_cores == 1 — warm_scaling rows measure \
             fan-out overhead, not speedup"
        );
    }
    // `host_cores` qualifies the scaling table: on a 1-core host the
    // multi-thread rows measure fan-out overhead, not speedup.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service/cold_vs_warm\",\n",
            "  \"host_cores\": {},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"warm_scaling\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cores(),
        entries.join(",\n"),
        scaling.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if has("--smoke") {
        smoke();
        return;
    }
    if has("--snapshot") || has("--snapshot-only") {
        emit_snapshot();
    }
    if has("--snapshot-only") {
        return;
    }
    benches();
}
