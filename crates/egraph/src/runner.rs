//! The saturation driver.
//!
//! Implements the match-and-insert loop of Figure 8 with two application
//! strategies from §3.1:
//!
//! * **depth-first** — apply *every* match of every rule each iteration
//!   (the strategy that blows up on AC rules and times out on GLM/SVM in
//!   the paper's Figure 16), and
//! * **sampling** — cap the number of matches applied per rule per
//!   iteration, sampling uniformly, which "encourages each rule to be
//!   considered equally often and prevents any single rule from exploding
//!   the graph".

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::hash::FxHashSet;
use crate::language::{Id, Language, RecExpr};
use crate::pattern::{SearchMatches, Subst};
use crate::relational::MatchingMode;
use crate::rewrite::Rewrite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Match application strategy (§3.1 "Dealing with Expansive Rules").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Apply all matches of all rules every iteration.
    DepthFirst,
    /// Apply at most `match_limit` sampled matches per rule per iteration.
    Sampling { match_limit: usize, seed: u64 },
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::Sampling {
            match_limit: 40,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-rule backoff (ROADMAP "Per-rule scheduling").
///
/// AC rules keep re-finding the same matches long after they stop
/// producing unions; searching them every iteration is pure overhead. The
/// runner watches each rule's [`RuleIterStats`]: once a rule has matched
/// without contributing a union for `fruitless_threshold` consecutive
/// iterations, it is muted — search is skipped entirely — for
/// `mute_iters` iterations, then re-admitted. With `exponential` set
/// (the default), a rule that resumes its fruitless streak after being
/// re-admitted is muted for twice as long each time, capped at
/// `max_mute_iters`, so persistently useless rules converge to paying
/// one probe per cap window instead of one per fixed-K window.
///
/// Muting never changes the fixpoint: a zero-union iteration only counts
/// as saturation when no rule is muted; otherwise every rule is unmuted
/// and the iteration retried, so [`StopReason::Saturated`] keeps its
/// meaning (the e-graph is closed under *all* rules).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Consecutive match-without-union iterations before muting.
    pub fruitless_threshold: usize,
    /// How many iterations a muted rule sits out (the base length).
    pub mute_iters: usize,
    /// Double the mute length on every repeated fruitless streak.
    pub exponential: bool,
    /// Cap on the (exponentially grown) mute length.
    pub max_mute_iters: usize,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            fruitless_threshold: 3,
            mute_iters: 4,
            exponential: true,
            max_mute_iters: 64,
        }
    }
}

impl BackoffConfig {
    /// Fixed-K muting (the PR-2 scheduler): every mute lasts `mute_iters`.
    pub fn fixed(fruitless_threshold: usize, mute_iters: usize) -> BackoffConfig {
        BackoffConfig {
            fruitless_threshold,
            mute_iters,
            exponential: false,
            max_mute_iters: mute_iters,
        }
    }

    /// Mute length for the `streak`-th consecutive fruitless streak.
    fn mute_len(&self, streak: u32) -> usize {
        if !self.exponential {
            return self.mute_iters;
        }
        let doubled = self.mute_iters.saturating_mul(1usize << streak.min(16));
        doubled.min(self.max_mute_iters.max(self.mute_iters))
    }
}

/// Per-region (per-root) convergence freezing for multi-root runs
/// (workload mode's "freeze saturated statement regions").
///
/// Each root of a multi-root run spans a *region*: the classes its root
/// can realize ([`EGraph::reachability_masks`]). A region whose reachable
/// set has produced no dirty classes for `quiet_iters` consecutive
/// iterations is **frozen**: classes reachable only from frozen roots
/// are dropped from every rule's candidate set (delta and full sweeps
/// alike). With `per_region_budget`, `Scheduler::Sampling`'s
/// `match_limit` is enforced *per region* (matches bucketed by the
/// lowest-numbered region of their root class — a freeze-independent
/// fairness partition, see `sample_per_region`) instead of one pooled
/// cap — so every live statement progresses at the per-statement
/// pipeline's application rate, no single hot statement can consume a
/// multiplied budget, and a frozen region's *exclusive* classes lose
/// their budget along with their candidates.
///
/// Classes shared with an active region stay active (regions overlap
/// exactly where cross-statement CSE lives). Freezing is deliberately
/// *lossy* in the same way per-statement stalls are: a frozen region
/// never thaws, late dirt that parent-closes into its exclusive classes
/// is discarded, and the run stops on
/// [`StopReason::RegionsConverged`] once every region has individually
/// stalled — exactly the work a per-statement pipeline would also have
/// left undone (the tier-1 `workload_cse` suite bounds the resulting
/// plan cost against the per-statement sum). Only with
/// [`Runner::with_exact_saturation`] does a zero-union iteration
/// instead unfreeze everything and run verification sweeps until a
/// genuine all-rules fixpoint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RegionConfig {
    /// Consecutive iterations a region's reachable set must stay free of
    /// dirty classes before the region is frozen.
    pub quiet_iters: usize,
    /// Enforce the sampling cap per region instead of globally. (With
    /// more than 64 roots, region tracking is unavailable and this
    /// falls back to one pooled cap of `match_limit × regions`.)
    pub per_region_budget: bool,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            quiet_iters: 2,
            per_region_budget: true,
        }
    }
}

/// Parallel search configuration: phase 1 of the two-phase iteration
/// (read-only search fan-out; apply/rebuild stay exclusive).
///
/// `threads == 1` runs search inline on the caller's thread — no task
/// materialization, no pool, byte-for-byte the historical serial path.
/// Results are **bit-identical at any thread count**: every rule's
/// candidate list is enumerated serially in ascending id order, shards
/// partition that list, per-shard match buffers are merged back into
/// ascending-class order, and the sampling RNG stays keyed by (seed,
/// iteration, rule name) — never by shard or thread (see
/// [`search_rules_parallel`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for the search phase (clamped to ≥ 1).
    pub threads: usize,
    /// Rules with at most this many candidates run as a single task, so
    /// tiny searches never pay fan-out overhead; larger candidate lists
    /// are split into shards of at least this size.
    pub min_shard_size: usize,
}

impl Default for ParallelConfig {
    /// Thread count from the `SPORES_THREADS` environment variable if
    /// set (the CI determinism matrix runs the whole suite at 1 and 8),
    /// else the host's available parallelism. Embedders that already
    /// run saturations on a worker pool clamp this further so the two
    /// pools never oversubscribe (see `spores-service`).
    fn default() -> Self {
        let threads = std::env::var("SPORES_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ParallelConfig {
            threads: threads.max(1),
            min_shard_size: 64,
        }
    }
}

impl ParallelConfig {
    /// Single-threaded search, ignoring the environment.
    pub fn serial() -> Self {
        ParallelConfig {
            threads: 1,
            min_shard_size: 64,
        }
    }
}

/// Shared reachability map: class -> bitmask of roots that reach it.
type RegionMasks = std::rc::Rc<crate::hash::FxHashMap<Id, u64>>;

/// Bitmask with a bit set for every unfrozen region.
fn active_region_mask(frozen: &[bool]) -> u64 {
    frozen
        .iter()
        .enumerate()
        .fold(0u64, |m, (r, &f)| if f { m } else { m | (1u64 << r) })
}

/// Mutable backoff bookkeeping for one rule.
#[derive(Clone, Debug, Default)]
struct BackoffState {
    /// Consecutive iterations with matches but no unions.
    fruitless: usize,
    /// Muted while the iteration index is below this.
    muted_until: usize,
    /// Completed fruitless streaks since the rule last produced a union
    /// (drives the exponential mute-length growth).
    streak: u32,
}

/// Why the runner stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No rule changed the graph: the e-graph represents the full
    /// transitive closure of the rules applied to the input.
    Saturated,
    /// Multi-root runs with [`RegionConfig`] only: every statement
    /// region individually reached its sampled fixpoint and froze —
    /// the workload analogue of each per-statement pipeline stopping on
    /// its own stall. (With [`Runner::with_exact_saturation`] the run
    /// instead proceeds to a full verification sweep and can only stop
    /// as [`StopReason::Saturated`] or on a limit.)
    RegionsConverged,
    IterationLimit(usize),
    NodeLimit(usize),
    TimeLimit(Duration),
}

/// Per-rule statistics for one saturation iteration.
#[derive(Clone, Debug, Default)]
pub struct RuleIterStats {
    pub rule: String,
    /// Classes the op-head index proposed for this rule's lhs (the
    /// classes actually visited by the compiled matcher).
    pub candidates: usize,
    /// (class, subst) instances found.
    pub matches: usize,
    /// Instances applied after scheduling (sampling may drop some).
    pub applied: usize,
    /// Unions this rule's applications produced directly (congruence
    /// unions surfaced later by `rebuild` are not attributed).
    pub unions: usize,
    /// True when backoff muted this rule for this iteration (its search
    /// was skipped entirely).
    pub muted: bool,
    /// True when this rule searched in delta mode (candidates restricted
    /// to classes dirty since the previous iteration). `candidates`
    /// counts the classes actually visited either way, so delta and
    /// full-sweep numbers aggregate comparably.
    pub delta: bool,
}

/// Statistics for one saturation iteration.
#[derive(Clone, Debug, Default)]
pub struct Iteration {
    pub matches_found: usize,
    pub matches_applied: usize,
    pub unions: usize,
    pub egraph_nodes: usize,
    pub egraph_classes: usize,
    pub search_time: Duration,
    pub apply_time: Duration,
    pub rebuild_time: Duration,
    /// Per-rule candidate/match/apply counts, in rule order.
    pub rules: Vec<RuleIterStats>,
    /// Per-root frozen flags for this iteration (empty unless region
    /// tracking is enabled via [`Runner::with_regions`]).
    pub frozen_regions: Vec<bool>,
}

/// Equality-saturation runner with limits and statistics.
pub struct Runner<L: Language, A: Analysis<L>> {
    pub egraph: EGraph<L, A>,
    pub roots: Vec<Id>,
    pub iterations: Vec<Iteration>,
    pub stop_reason: Option<StopReason>,
    scheduler: Scheduler,
    backoff: Option<BackoffConfig>,
    /// Static explosiveness priors: initial fruitless-streak seed per
    /// rule name (see [`Runner::with_rule_priors`]).
    rule_priors: Option<crate::hash::FxHashMap<String, u32>>,
    /// Delta (dirty-class) search between full sweeps (on by default).
    delta: bool,
    /// Exact verification sweeps (off by default; see
    /// [`Runner::with_exact_saturation`]).
    exact: bool,
    regions: Option<RegionConfig>,
    parallel: ParallelConfig,
    /// Which e-matching backend the search phase runs (structural
    /// machine or relational generic join). Never changes results —
    /// only how much work a sweep does.
    matching: MatchingMode,
    iter_limit: usize,
    node_limit: usize,
    time_limit: Duration,
}

impl<L: Language, A: Analysis<L> + Default> Default for Runner<L, A> {
    fn default() -> Self {
        Runner::new(A::default())
    }
}

impl<L: Language, A: Analysis<L>> Runner<L, A> {
    pub fn new(analysis: A) -> Self {
        Runner {
            egraph: EGraph::new(analysis),
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            scheduler: Scheduler::default(),
            backoff: Some(BackoffConfig::default()),
            rule_priors: None,
            delta: true,
            exact: false,
            regions: None,
            parallel: ParallelConfig::default(),
            matching: MatchingMode::default(),
            iter_limit: 30,
            node_limit: 50_000,
            time_limit: Duration::from_secs(10),
        }
    }

    pub fn with_egraph(mut self, egraph: EGraph<L, A>) -> Self {
        self.egraph = egraph;
        self
    }

    /// Add a root expression to optimize.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.roots.push(id);
        self
    }

    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Set the per-rule backoff policy (on by default).
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Disable per-rule backoff: search every rule every iteration.
    pub fn without_backoff(mut self) -> Self {
        self.backoff = None;
        self
    }

    /// Seed each named rule's backoff with an initial fruitless-streak
    /// count (typically the static explosiveness priors computed by
    /// `spores-ruleaudit`). A rule with prior `k` gets its first mute
    /// lengthened as if it had already sat out `k` fruitless streaks, so
    /// statically explosive rules (AC permutations, self-feeding
    /// expanders) are paced down sooner. Pacing only: muting delays
    /// *when* a rule is searched, never whether its matches are
    /// eventually applied, so the saturation fixpoint is unchanged.
    /// Rules absent from the map start at the usual zero. No-op when
    /// backoff is disabled.
    pub fn with_rule_priors(mut self, priors: crate::hash::FxHashMap<String, u32>) -> Self {
        self.rule_priors = Some(priors);
        self
    }

    /// Disable delta (dirty-class) search: every unmuted rule does a
    /// full sweep every iteration (the pre-incremental behaviour, kept
    /// for differential tests and benches).
    pub fn without_delta_search(mut self) -> Self {
        self.delta = false;
        self
    }

    /// Make verification sweeps *exact*: instead of a sampled
    /// application pass, each rule applies its entire match pool
    /// (capped at `match_limit` scaled *unions* — fruitless
    /// applications insert no nodes, so draining them is free and
    /// bounded), and saturation is only declared when a sweep drains
    /// every pool without a single union. This upgrades
    /// [`StopReason::Saturated`] from the sampled-fixpoint criterion of
    /// §3.1 (a full sweep whose *sampled* applications produced no
    /// union — the default, matching the paper's runs) to a guarantee
    /// that the e-graph is genuinely closed under every rule. Costs
    /// more iterations on AC-heavy inputs; used where closure equality
    /// matters more than compile time.
    pub fn with_exact_saturation(mut self) -> Self {
        self.exact = true;
        self
    }

    /// Enable per-region convergence freezing over this runner's roots
    /// (workload mode). No-op for single-root runs; region tracking
    /// needs ≤ 64 roots (beyond that only the match-limit scaling
    /// applies, with every region considered active).
    pub fn with_regions(mut self, regions: RegionConfig) -> Self {
        self.regions = Some(regions);
        self
    }

    /// Set the parallel-search configuration (defaults to
    /// [`ParallelConfig::default`]: `SPORES_THREADS` or the host's
    /// available parallelism). Thread count never changes results.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Pick the e-matching backend for the search phase (structural by
    /// default). Matches, stats, and plans are bit-identical either
    /// way; relational mode trades per-sweep join-plan construction for
    /// guard-pruned class scans.
    pub fn with_matching(mut self, matching: MatchingMode) -> Self {
        self.matching = matching;
        self
    }

    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Did the run stop because the rules were exhausted?
    pub fn saturated(&self) -> bool {
        matches!(self.stop_reason, Some(StopReason::Saturated))
    }

    /// Run saturation to convergence or until a limit trips.
    ///
    /// Search is *incremental* by default: each iteration takes the
    /// e-graph's dirty-class set (everything touched since the previous
    /// iteration, closed over parents) and each rule only re-searches
    /// those classes ([`Rewrite::search_delta_with_stats`]). A rule
    /// full-sweeps only on its first search and on verification sweeps;
    /// while muted it *banks* the dirty snapshots it sleeps through and
    /// delta-searches the accumulated set on re-admission, so no delta
    /// is ever missed. [`StopReason::Saturated`] is still only declared
    /// on a full-sweep fixpoint with every rule active and every region
    /// unfrozen (region-tracked non-exact runs instead stop on
    /// [`StopReason::RegionsConverged`] once every statement region has
    /// individually stalled).
    ///
    /// Each iteration is two-phase: phase 1 searches all unmuted rules
    /// against the immutable e-graph — fanned across a scoped thread
    /// pool per [`ParallelConfig`] — and phase 2 drains the merged
    /// match buffers through the exclusive apply path and a single
    /// rebuild. The `Sync` bounds let phase 1 share `&EGraph` across
    /// threads; they are vacuous for any analysis built from plain
    /// data.
    pub fn run(mut self, rules: &[Rewrite<L, A>]) -> Self
    where
        L: Sync,
        A: Sync,
        A::Data: Sync,
    {
        let start = Instant::now();
        if !self.egraph.is_clean() {
            self.egraph.rebuild();
        }
        let mut backoff_state: Vec<BackoffState> = rules
            .iter()
            .map(|r| BackoffState {
                streak: self
                    .rule_priors
                    .as_ref()
                    .and_then(|p| p.get(&r.name).copied())
                    .unwrap_or(0),
                ..BackoffState::default()
            })
            .collect();
        // Every rule's first search is a full sweep — this is the
        // "dirty set seeded with all classes" base case, and it also
        // covers e-graphs passed in via `with_egraph` whose dirty set
        // was already taken by an earlier run.
        let mut pending_full = vec![true; rules.len()];
        // Dirty classes a muted rule missed while sitting out: on
        // re-admission it delta-searches this accumulated set (plus the
        // current snapshot) instead of a full sweep, so muting never
        // resurrects already-tried fruitless matches from quiescent
        // classes. (Merged-away ids in here are harmless: every union
        // marks its surviving root in a later snapshot, which is also
        // accumulated.)
        let mut missed: Vec<FxHashSet<Id>> = vec![FxHashSet::default(); rules.len()];

        // Region tracking (only meaningful with several roots; the
        // bitmask reachability map supports at most 64 of them).
        let n_regions = self.roots.len();
        let region_cfg = self.regions.filter(|_| n_regions > 1);
        let track_regions = region_cfg.is_some() && n_regions <= 64;
        let mut frozen = vec![false; n_regions];
        let mut quiet = vec![0usize; n_regions];
        // True for the iteration right after a pseudo-fixpoint: freeze
        // decisions are suspended so the verification sweep really
        // covers the whole graph (the previous iteration had zero
        // unions, so every region would otherwise look quiet).
        let mut verify_sweep = false;
        // Reachability masks cache: the DFS over the whole graph is
        // only re-run when the graph actually changed (union count or
        // node count moved) — converging tails reuse the previous
        // iteration's masks. Rc-shared so cache hits cost nothing.
        let mut masks_cache: Option<(usize, usize, RegionMasks)> = None;

        loop {
            if self.iterations.len() >= self.iter_limit {
                self.stop_reason = Some(StopReason::IterationLimit(self.iter_limit));
                break;
            }
            if self.egraph.total_number_of_nodes() > self.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit(self.node_limit));
                break;
            }
            if start.elapsed() > self.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit(self.time_limit));
                break;
            }

            let mut iter = Iteration::default();
            let iter_ix = self.iterations.len();

            // --- dirty snapshot + region bookkeeping -----------------
            // Changes applied from here on accumulate into a fresh dirty
            // set for the next iteration.
            let mut dirty = self.egraph.take_dirty();
            let mut frozen_classes: FxHashSet<Id> = FxHashSet::default();
            let mut active_regions = n_regions.max(1);
            let this_verify = std::mem::take(&mut verify_sweep);
            // class -> region bitmask, for freezing and the per-region
            // sampling budget (None when region tracking is off).
            let mut region_masks: Option<RegionMasks> = None;
            if let Some(cfg) = &region_cfg {
                if track_regions {
                    let fingerprint = (self.egraph.n_unions(), self.egraph.total_number_of_nodes());
                    let masks = match masks_cache.take() {
                        Some((u, n, m)) if (u, n) == fingerprint => m,
                        _ => std::rc::Rc::new(self.egraph.reachability_masks(&self.roots)),
                    };
                    if !this_verify {
                        // Charge each dirty class to its lowest *active*
                        // region, so churn in a shared class keeps one
                        // region awake, not every region that can reach
                        // it. Regions freeze top-down; the last active
                        // owner of a shared core holds its convergence.
                        // (The budget bucketing in `sample_per_region`
                        // deliberately uses a different partition — see
                        // its docs.)
                        let active_mask_prev = active_region_mask(&frozen);
                        let mut region_dirty = vec![false; n_regions];
                        for id in &dirty {
                            let mask = masks.get(id).copied().unwrap_or(0) & active_mask_prev;
                            if mask != 0 {
                                region_dirty[mask.trailing_zeros() as usize] = true;
                            }
                        }
                        for (r, (frozen_r, quiet_r)) in
                            frozen.iter_mut().zip(quiet.iter_mut()).enumerate()
                        {
                            if *frozen_r {
                                continue;
                            }
                            if region_dirty[r] {
                                *quiet_r = 0;
                            } else {
                                *quiet_r += 1;
                                if *quiet_r >= cfg.quiet_iters {
                                    *frozen_r = true;
                                }
                            }
                        }
                        if frozen.iter().any(|&f| f) {
                            let active_mask = active_region_mask(&frozen);
                            // Freeze classes reachable from frozen roots
                            // only; shared classes (and classes reachable
                            // from no root) stay active.
                            for (&id, &mask) in masks.iter() {
                                if mask != 0 && mask & active_mask == 0 {
                                    frozen_classes.insert(id);
                                }
                            }
                            dirty.retain(|id| !frozen_classes.contains(id));
                        }
                        active_regions = frozen.iter().filter(|&&f| !f).count().max(1);
                    }
                    masks_cache = Some((fingerprint.0, fingerprint.1, std::rc::Rc::clone(&masks)));
                    region_masks = Some(masks);
                }
                iter.frozen_regions = frozen.clone();
            }
            // Every region individually reached its sampled fixpoint:
            // the workload is done (the per-statement pipelines would
            // each have stopped on exactly this per-region stall). Exact
            // mode instead falls through — the searches below find
            // nothing (every reachable class is frozen), and the
            // resulting pseudo-fixpoint triggers an unfreeze-everything
            // verification sweep.
            if track_regions && !self.exact && frozen.iter().all(|&f| f) {
                self.stop_reason = Some(StopReason::RegionsConverged);
                break;
            }
            // Pooled-cap scale for the fallbacks that cannot budget per
            // region: the exact-verification union quota, and >64-root
            // runs without reachability masks.
            let pooled_scale = if region_cfg.is_some() {
                active_regions
            } else {
                1
            };
            let per_region = region_cfg.as_ref().is_some_and(|c| c.per_region_budget);

            // --- search phase (phase 1: read-only) -------------------
            // Candidate enumeration stays serial (it is cheap and needs
            // the Rc'd region masks, which must not cross threads); the
            // compiled-machine runs over the lists fan out.
            //
            // The iteration span opens here, after the early-stop checks
            // above, so every `saturation.iter` span contains exactly one
            // search/apply/rebuild triple (the trace checker and the ML
            // integration test rely on those counts being equal).
            let mut iter_span = spores_telemetry::span!("saturation.iter", iter = iter_ix);
            let search_span = spores_telemetry::span!("saturation.search");
            let t = Instant::now();
            // One sorted dirty snapshot shared by every delta rule (the
            // per-rule search used to re-sort the set each time).
            let mut dirty_sorted: Vec<Id> = dirty.iter().copied().collect();
            dirty_sorted.sort_unstable();
            // Per-rule candidate plan: `None` = muted (search skipped),
            // `Some` = the exact id list a serial search would visit.
            let mut plan: Vec<Option<Vec<Id>>> = Vec::with_capacity(rules.len());
            let mut full_flags = vec![false; rules.len()];
            for (i, rule) in rules.iter().enumerate() {
                if self.backoff.is_some() && iter_ix < backoff_state[i].muted_until {
                    // muted: skip the search entirely, but bank this
                    // iteration's dirty snapshot so re-admission can
                    // delta-search everything the mute skipped.
                    missed[i].extend(dirty.iter().copied());
                    plan.push(None);
                    continue;
                }
                let full = pending_full[i] || !self.delta;
                full_flags[i] = full;
                let ids = if full {
                    pending_full[i] = false;
                    missed[i].clear();
                    rule.except_candidate_ids(&self.egraph, &frozen_classes)
                } else if missed[i].is_empty() {
                    rule.delta_candidate_ids(&self.egraph, &dirty_sorted)
                } else {
                    let banked = std::mem::take(&mut missed[i]);
                    let mut banked_sorted: Vec<Id> = banked
                        .into_iter()
                        .filter(|id| !frozen_classes.contains(id))
                        .chain(dirty.iter().copied())
                        .collect();
                    banked_sorted.sort_unstable();
                    banked_sorted.dedup();
                    rule.delta_candidate_ids(&self.egraph, &banked_sorted)
                };
                plan.push(Some(ids));
            }
            let searched = search_rules_parallel(
                &self.egraph,
                rules,
                &plan,
                region_masks.as_deref(),
                self.parallel,
                self.matching,
            );
            // Flatten each rule's matches to (class, subst) instances.
            let mut per_rule: Vec<Vec<(Id, Subst)>> = Vec::with_capacity(rules.len());
            for ((rule, result), full) in rules.iter().zip(searched).zip(full_flags) {
                let Some((matches, candidates)) = result else {
                    iter.rules.push(RuleIterStats {
                        rule: rule.name.clone(),
                        muted: true,
                        ..RuleIterStats::default()
                    });
                    per_rule.push(Vec::new());
                    continue;
                };
                let mut instances = Vec::new();
                for m in matches {
                    for s in m.substs {
                        instances.push((m.eclass, s));
                    }
                }
                iter.matches_found += instances.len();
                iter.rules.push(RuleIterStats {
                    rule: rule.name.clone(),
                    candidates,
                    matches: instances.len(),
                    delta: !full,
                    ..RuleIterStats::default()
                });
                per_rule.push(instances);
            }
            iter.search_time = t.elapsed();
            drop(search_span);

            // --- scheduling + apply phase ----------------------------
            let apply_span = spores_telemetry::span!("saturation.apply");
            let t = Instant::now();
            for (i, (rule, mut instances)) in rules.iter().zip(per_rule).enumerate() {
                let mut union_quota = usize::MAX;
                let mut dropped: Vec<(Id, Subst)> = Vec::new();
                if let Scheduler::Sampling { match_limit, seed } = self.scheduler {
                    if this_verify && self.exact {
                        // Exact verification sweep: apply the *whole*
                        // pool — fruitless applications insert no
                        // nodes, so draining them is free and a
                        // zero-union sweep certifies a genuine
                        // all-rules fixpoint — but cap the *productive*
                        // applications at the sampling limit so a
                        // falsified pseudo-fixpoint grows the graph no
                        // faster than a normal sampled iteration (no
                        // §3.1 depth-first explosion).
                        union_quota = match_limit.saturating_mul(pooled_scale).max(1);
                    } else {
                        // Each rule samples from its own RNG stream
                        // derived from the seed, the iteration, and the
                        // rule *name*, so which matches a rule applies
                        // is stable under rule reordering. With a
                        // per-region budget, the cap applies to each
                        // live statement region separately, so every
                        // statement progresses at the per-statement
                        // pipeline's application rate and no hot
                        // region can consume a pooled multiple.
                        let mut rng = rule_rng(seed, iter_ix as u64, &rule.name);
                        dropped = match (&region_masks, per_region) {
                            (Some(masks), true) => sample_per_region(
                                &mut instances,
                                masks,
                                n_regions,
                                match_limit,
                                &mut rng,
                            ),
                            _ => {
                                let limit = match_limit.saturating_mul(pooled_scale);
                                sample_in_place(&mut instances, limit, &mut rng)
                            }
                        };
                    }
                }
                let mut rule_unions = 0;
                let mut applied = 0;
                for (ix, (class, subst)) in instances.iter().enumerate() {
                    rule_unions += rule.apply_match(&mut self.egraph, *class, subst);
                    applied += 1;
                    iter.matches_applied += 1;
                    if rule_unions >= union_quota {
                        // Quota hit: defer the rest of the pool to the
                        // following delta iterations.
                        for &(c, _) in &instances[ix + 1..] {
                            self.egraph.mark_dirty(c);
                        }
                        break;
                    }
                }
                // Sampled-out matches of a *productive* rule are
                // pending, not gone: re-mark their root classes so the
                // next delta sweep re-finds them (full re-search used to
                // give every match a fresh chance each iteration). A
                // rule whose whole sample applied without one union
                // signals a stale pool — its drops decay instead of
                // re-marking, so a converging run's dirt dies out rather
                // than self-sustaining (the information lost is exactly
                // what the pre-incremental sampled stall also lost).
                if rule_unions > 0 {
                    for (class, _) in dropped {
                        self.egraph.mark_dirty(class);
                    }
                }
                iter.rules[i].applied = applied;
                iter.rules[i].unions = rule_unions;
                iter.unions += rule_unions;
            }
            iter.apply_time = t.elapsed();
            drop(apply_span);

            // --- rebuild phase ---------------------------------------
            let rebuild_span = spores_telemetry::span!("saturation.rebuild");
            let t = Instant::now();
            iter.unions += self.egraph.rebuild();
            iter.rebuild_time = t.elapsed();
            drop(rebuild_span);

            // --- backoff bookkeeping ---------------------------------
            let mut any_muted = false;
            if let Some(cfg) = self.backoff {
                for (i, state) in backoff_state.iter_mut().enumerate() {
                    let stats = &iter.rules[i];
                    if stats.muted {
                        any_muted = true;
                        continue;
                    }
                    // `applied > 0` guards the verification-sweep early
                    // exit: a rule whose pool was deferred untried must
                    // not be counted fruitless.
                    if stats.matches > 0 && stats.applied > 0 && stats.unions == 0 {
                        state.fruitless += 1;
                        if state.fruitless >= cfg.fruitless_threshold {
                            state.muted_until = iter_ix + 1 + cfg.mute_len(state.streak);
                            state.streak = state.streak.saturating_add(1);
                            state.fruitless = 0;
                        }
                    } else {
                        state.fruitless = 0;
                        if stats.unions > 0 {
                            // productive again: restart the exponential ladder
                            state.streak = 0;
                        }
                    }
                }
            }

            iter.egraph_nodes = self.egraph.total_number_of_nodes();
            iter.egraph_classes = self.egraph.number_of_classes();
            let saturated = iter.unions == 0;
            // In exact mode only a verification sweep (whole pools
            // applied) may declare saturation — a sampled zero-union
            // sweep is just a pseudo-fixpoint to verify.
            let partial_view = any_muted
                || frozen.iter().any(|&f| f)
                || iter.rules.iter().any(|r| r.delta)
                || (self.exact && !this_verify);
            iter_span.arg("unions", iter.unions);
            iter_span.arg("nodes", iter.egraph_nodes);
            drop(iter_span);
            if spores_telemetry::enabled() {
                // Per-rule counters mirror `RuleIterStats` into the
                // metrics registry, labeled by rule name, so the text
                // exposition can attribute candidate/match volume without
                // walking `Runner::iterations`.
                let registry = spores_telemetry::global().registry();
                for r in &iter.rules {
                    let labels = [("rule", r.rule.as_str())];
                    registry
                        .counter_labeled("saturation.rule.candidates", &labels)
                        .add(r.candidates as u64);
                    registry
                        .counter_labeled("saturation.rule.matches", &labels)
                        .add(r.matches as u64);
                    registry
                        .counter_labeled("saturation.rule.applied", &labels)
                        .add(r.applied as u64);
                    registry
                        .counter_labeled("saturation.rule.unions", &labels)
                        .add(r.unions as u64);
                }
            }
            self.iterations.push(iter);

            if saturated {
                if partial_view {
                    if track_regions && !self.exact {
                        // Workload mode converges *per region*: the
                        // freeze accounting decides when each statement
                        // is done ([`StopReason::RegionsConverged`]), so
                        // a zero-union iteration just lets the quiet
                        // counters tick — a global verification sweep
                        // here would unfreeze everything and refill
                        // every drained match pool right as the
                        // workload finishes.
                        continue;
                    }
                    // A fixpoint of a *partial* view only (muted rules,
                    // frozen regions, or delta-restricted candidates —
                    // delta can also have dropped sampled-out matches):
                    // re-admit every rule, unfreeze every region, force
                    // full sweeps, and try again before declaring
                    // saturation. Each rule keeps its fruitless-streak
                    // ladder: re-admission is for the fixpoint check,
                    // not evidence the rule became productive, so a
                    // still-fruitless rule goes back to its grown mute
                    // length instead of restarting from the base.
                    for state in &mut backoff_state {
                        state.muted_until = 0;
                        state.fruitless = 0;
                    }
                    pending_full.fill(true);
                    frozen.fill(false);
                    quiet.fill(0);
                    verify_sweep = true;
                    continue;
                }
                self.stop_reason = Some(StopReason::Saturated);
                break;
            }
        }
        // Report canonical roots.
        for root in &mut self.roots {
            *root = self.egraph.find(*root);
        }
        self
    }
}

/// Phase 1 of the two-phase iteration: run every (rule ×
/// candidate-shard) search task against the immutable `&EGraph` and
/// merge the per-shard match buffers back into serial order.
///
/// `plan[i]` is rule `i`'s candidate id list in ascending order (`None`
/// = muted, skipped). Returns, per rule, exactly what
/// [`Rewrite::search_ids_with_stats`] over the unsharded list returns,
/// at any thread count and under any shard structure:
///
/// * shards partition an ascending candidate list and each class's
///   matches stay inside one shard, so re-sorting the concatenated
///   shard buffers by root class restores the serial match order
///   (per-class substitution order is computed within a shard and
///   already canonical);
/// * visited counts sum over a partition, so per-rule candidate totals
///   are exact, not approximate;
/// * nothing downstream is keyed by shard or thread — the sampling RNG
///   stays a function of (seed, iteration, rule name).
///
/// With `threads == 1` no tasks are materialized and every rule runs
/// inline — the serial fast path single-core hosts take.
pub fn search_rules_parallel<L, A>(
    egraph: &EGraph<L, A>,
    rules: &[Rewrite<L, A>],
    plan: &[Option<Vec<Id>>],
    masks: Option<&crate::hash::FxHashMap<Id, u64>>,
    cfg: ParallelConfig,
    matching: MatchingMode,
) -> Vec<Option<(Vec<SearchMatches>, usize)>>
where
    L: Language + Sync,
    A: Analysis<L> + Sync,
    A::Data: Sync,
{
    assert_eq!(rules.len(), plan.len());
    let threads = cfg.threads.max(1);
    if threads == 1 {
        return rules
            .iter()
            .zip(plan)
            .map(|(rule, ids)| {
                ids.as_ref().map(|ids| {
                    let _span = spores_telemetry::span!(
                        "saturation.search.shard",
                        rule = rule.name.as_str(),
                        candidates = ids.len(),
                    );
                    rule.search_ids_with_stats_mode(egraph, ids, matching)
                })
            })
            .collect();
    }
    // Materialize the (rule, shard) task list on this thread — the
    // shard assignment consults the region masks, which live behind an
    // `Rc` and must not be captured by the pool's closures.
    let mut tasks: Vec<(usize, Vec<Id>)> = Vec::new();
    let mut shards_of: Vec<std::ops::Range<usize>> = Vec::with_capacity(plan.len());
    for (i, ids) in plan.iter().enumerate() {
        let start = tasks.len();
        if let Some(ids) = ids {
            for shard in shard_candidates(ids, masks, threads, cfg.min_shard_size) {
                tasks.push((i, shard));
            }
        }
        shards_of.push(start..tasks.len());
    }
    let results = spores_pool::scoped_map(threads, tasks.len(), |t| {
        let (rule_ix, ids) = &tasks[t];
        let _span = spores_telemetry::span!(
            "saturation.search.shard",
            rule = rules[*rule_ix].name.as_str(),
            candidates = ids.len(),
        );
        rules[*rule_ix].search_ids_with_stats_mode(egraph, ids, matching)
    });
    let mut results = results.into_iter();
    let mut out = Vec::with_capacity(plan.len());
    for (ids, range) in plan.iter().zip(shards_of) {
        if ids.is_none() {
            out.push(None);
            continue;
        }
        let mut matches: Vec<SearchMatches> = Vec::new();
        let mut visited = 0usize;
        for _ in range {
            let (m, v) = results.next().expect("one result per task");
            matches.extend(m);
            visited += v;
        }
        matches.sort_unstable_by_key(|m| m.eclass);
        out.push(Some((matches, visited)));
    }
    out
}

/// Split one rule's candidate list into search shards.
///
/// In workload mode candidates are grouped by *anchor region* first —
/// the lowest-numbered root that reaches the class, the same partition
/// [`sample_per_region`] buckets matches by — so a shard's classes
/// mostly belong to one statement region and traverse that statement's
/// slice of the graph. Single-root runs (no masks) just chunk the
/// ascending candidate list. Either way shards partition the input and
/// the caller re-sorts merged matches, so shard structure never leaks
/// into results; the grouping only exists for locality.
fn shard_candidates(
    ids: &[Id],
    masks: Option<&crate::hash::FxHashMap<Id, u64>>,
    threads: usize,
    min_shard_size: usize,
) -> Vec<Vec<Id>> {
    if ids.is_empty() {
        return Vec::new();
    }
    let min_shard = min_shard_size.max(1);
    if ids.len() <= min_shard {
        return vec![ids.to_vec()];
    }
    let mut ordered = ids.to_vec();
    if let Some(masks) = masks {
        // Stable sort: ascending id order is preserved within each
        // region bucket (mask 0 / absent sorts last as bucket 64).
        ordered.sort_by_key(|id| masks.get(id).copied().unwrap_or(0).trailing_zeros());
    }
    // About two tasks per thread so work stealing can balance uneven
    // shard costs, but never shards smaller than the configured floor.
    let target = min_shard.max(ordered.len().div_ceil(threads * 2));
    ordered.chunks(target).map(|c| c.to_vec()).collect()
}

/// Deterministic RNG stream for one rule in one iteration: a hash of the
/// scheduler seed, the iteration number, and the rule name. Independent
/// of the rule's position in the rule list.
fn rule_rng(seed: u64, iteration: u64, name: &str) -> StdRng {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write(name.as_bytes());
    h.write_u64(seed);
    h.write_u64(iteration);
    StdRng::seed_from_u64(h.finish())
}

/// Per-region sampling: bucket instances by the lowest-numbered region
/// of their root class (classes reachable from no root share one extra
/// bucket), keep a uniform sample of `limit` per bucket, and return the
/// dropped remainder.
///
/// The bucketing is a *fairness partition*, deliberately independent of
/// freeze state: a shared class keeps its anchor bucket even when that
/// anchor region freezes, so the shared core's application budget stays
/// stable as exclusive fringes converge (re-anchoring shared matches to
/// the lowest *active* region was tried and measurably starves the
/// remaining hot statements' own buckets on ALS). A frozen region still
/// loses the budget of its *exclusive* classes — they are excluded from
/// every candidate set, so no instances land in any bucket for them.
/// The freeze accounting in `run` charges dirt to the lowest *active*
/// region instead, because convergence must never be attributed to a
/// region that is no longer searched.
fn sample_per_region(
    instances: &mut Vec<(Id, Subst)>,
    masks: &crate::hash::FxHashMap<Id, u64>,
    n_regions: usize,
    limit: usize,
    rng: &mut StdRng,
) -> Vec<(Id, Subst)> {
    let mut buckets: Vec<Vec<(Id, Subst)>> = vec![Vec::new(); n_regions + 1];
    for inst in instances.drain(..) {
        let mask = masks.get(&inst.0).copied().unwrap_or(0);
        let b = if mask == 0 {
            n_regions
        } else {
            mask.trailing_zeros() as usize
        };
        buckets[b].push(inst);
    }
    let mut dropped = Vec::new();
    for mut bucket in buckets {
        dropped.extend(sample_in_place(&mut bucket, limit, rng));
        instances.extend(bucket);
    }
    dropped
}

/// Keep a uniform sample of `limit` elements of `v` (partial
/// Fisher-Yates), returning the dropped remainder.
fn sample_in_place<T>(v: &mut Vec<T>, limit: usize, rng: &mut StdRng) -> Vec<T> {
    if v.len() <= limit {
        return Vec::new();
    }
    for i in 0..limit {
        let j = rng.random_range(i..v.len());
        v.swap(i, j);
    }
    v.split_off(limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    fn rules() -> Vec<Rewrite<Arith, ()>> {
        vec![
            Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::new("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            Rewrite::new("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::new("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))").unwrap(),
            Rewrite::new("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))").unwrap(),
        ]
    }

    #[test]
    fn rule_priors_never_change_the_fixpoint() {
        let expr = parse_rec_expr("(* (+ x y) (+ y z))").unwrap();
        let plain = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        let mut priors = crate::hash::FxHashMap::default();
        priors.insert("comm-add".to_owned(), 3);
        priors.insert("distribute".to_owned(), 2);
        let primed = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_rule_priors(priors)
            .run(&rules());
        assert!(plain.saturated() && primed.saturated());
        assert_eq!(
            plain.egraph.number_of_classes(),
            primed.egraph.number_of_classes()
        );
        assert_eq!(
            plain.egraph.total_number_of_nodes(),
            primed.egraph.total_number_of_nodes()
        );
    }

    #[test]
    fn saturates_small_input() {
        let expr = parse_rec_expr("(+ x y)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert!(runner.saturated(), "{:?}", runner.stop_reason);
        let flipped = parse_rec_expr::<Arith>("(+ y x)").unwrap();
        assert_eq!(runner.egraph.lookup_expr(&flipped), Some(runner.roots[0]));
    }

    #[test]
    fn proves_distributivity_composition() {
        // (x + y) * z == x*z + y*z requires comm + distribute
        let lhs = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rhs = parse_rec_expr::<Arith>("(+ (* x z) (* y z))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&lhs)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert_eq!(
            runner
                .egraph
                .lookup_expr(&rhs)
                .map(|id| runner.egraph.find(id)),
            Some(runner.roots[0])
        );
    }

    #[test]
    fn iteration_limit_respected() {
        let expr = parse_rec_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_iter_limit(2)
            .run(&rules());
        assert!(runner.iterations.len() <= 2);
    }

    #[test]
    fn node_limit_stops_explosion() {
        let expr =
            parse_rec_expr("(* (* (* (* (* (* a b) c) d) e) f) (* (* g h) (* i j)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_node_limit(200)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        assert!(matches!(
            runner.stop_reason,
            Some(StopReason::NodeLimit(_)) | Some(StopReason::Saturated)
        ));
    }

    #[test]
    fn sampling_still_converges_on_small_input() {
        // §4.3: "sampling always preserves convergence in practice"
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rhs = parse_rec_expr::<Arith>("(+ (* x z) (* y z))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::Sampling {
                match_limit: 4,
                seed: 7,
            })
            .with_iter_limit(100)
            .run(&rules());
        assert!(runner.saturated());
        assert_eq!(
            runner
                .egraph
                .lookup_expr(&rhs)
                .map(|id| runner.egraph.find(id)),
            Some(runner.roots[0])
        );
    }

    #[test]
    fn stats_are_recorded() {
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .run(&rules());
        assert!(!runner.iterations.is_empty());
        let last = runner.iterations.last().unwrap();
        assert!(last.egraph_nodes > 0);
        assert_eq!(last.unions, 0, "last iteration must be a fixpoint");
    }

    #[test]
    fn per_rule_stats_are_recorded() {
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let rules = rules();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules);
        let first = &runner.iterations[0];
        assert_eq!(first.rules.len(), rules.len());
        for (stat, rule) in first.rules.iter().zip(&rules) {
            assert_eq!(stat.rule, rule.name);
            if stat.matches > 0 {
                assert!(stat.candidates > 0, "matches require candidates");
            }
            assert_eq!(
                stat.applied, stat.matches,
                "depth-first applies every match"
            );
        }
        // (* (+ x y) z): one class matches comm-mul, one comm-add
        assert_eq!(first.rules[0].matches, 1, "comm-add");
        assert_eq!(first.rules[1].matches, 1, "comm-mul");
        let total: usize = first.rules.iter().map(|r| r.matches).sum();
        assert_eq!(total, first.matches_found);
    }

    /// The default rules plus an identity rewrite: it matches every `+`
    /// class each iteration and never produces a union — exactly the
    /// fruitless-but-matching shape backoff exists to mute.
    fn rules_with_identity() -> Vec<Rewrite<Arith, ()>> {
        let mut rs = rules();
        rs.push(Rewrite::new("identity-add", "(+ ?a ?b)", "(+ ?a ?b)").unwrap());
        rs
    }

    #[test]
    fn backoff_mutes_fruitless_rules_and_saturation_is_preserved() {
        let expr = parse_rec_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let cfg = BackoffConfig {
            fruitless_threshold: 2,
            mute_iters: 3,
            ..BackoffConfig::default()
        };
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_backoff(cfg)
            .with_iter_limit(50)
            .run(&rules_with_identity());
        assert!(runner.saturated(), "{:?}", runner.stop_reason);
        let muted_iters: usize = runner
            .iterations
            .iter()
            .flat_map(|it| &it.rules)
            .filter(|r| r.muted)
            .count();
        assert!(muted_iters > 0, "backoff never muted any rule");
        // the final iteration must be a full-rule fixpoint: nothing muted
        let last = runner.iterations.last().unwrap();
        assert!(last.rules.iter().all(|r| !r.muted));
        assert_eq!(last.unions, 0);
        // and the e-graph is the same closure the no-backoff run reaches
        let plain = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .without_backoff()
            .with_iter_limit(50)
            .run(&rules_with_identity());
        assert!(plain.saturated());
        assert_eq!(
            runner.egraph.total_number_of_nodes(),
            plain.egraph.total_number_of_nodes()
        );
        assert_eq!(
            runner.egraph.number_of_classes(),
            plain.egraph.number_of_classes()
        );
    }

    #[test]
    fn muted_rules_skip_search_work() {
        let expr = parse_rec_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_backoff(BackoffConfig {
                fruitless_threshold: 1,
                mute_iters: 2,
                ..BackoffConfig::default()
            })
            .with_iter_limit(50)
            .run(&rules_with_identity());
        for it in &runner.iterations {
            for r in &it.rules {
                if r.muted {
                    assert_eq!(r.candidates, 0, "muted rule searched candidates");
                    assert_eq!(r.matches, 0);
                    assert_eq!(r.applied, 0);
                }
            }
        }
    }

    /// Total candidate classes the matcher visited for one rule.
    fn rule_candidates(runner: &Runner<Arith, ()>, name: &str) -> usize {
        runner
            .iterations
            .iter()
            .flat_map(|it| &it.rules)
            .filter(|r| r.rule == name)
            .map(|r| r.candidates)
            .sum()
    }

    #[test]
    fn exponential_backoff_wastes_fewer_candidates_than_fixed_k() {
        // AC-heavy input: the comm/assoc closure of a 6-leaf sum takes
        // many sampled iterations to saturate, during which the identity
        // rule keeps matching every `+` class without ever producing a
        // union — the pure-waste shape backoff exists for.
        // Exact saturation (match_limit 8): both runs must converge to
        // the *same* final e-graph — the genuine closure — so the
        // equal-closure control below is deterministic rather than a
        // trajectory coincidence. At limit 2 the closure needs
        // thousands of sampled applications, beyond the budget.
        let expr = parse_rec_expr("(+ (+ a b) (+ (+ c d) (+ e f)))").unwrap();
        let run = |cfg: BackoffConfig| -> Runner<Arith, ()> {
            Runner::<Arith, ()>::default()
                .with_expr(&expr)
                .with_scheduler(Scheduler::Sampling {
                    match_limit: 8,
                    seed: 5,
                })
                .with_backoff(cfg)
                .with_exact_saturation()
                .with_iter_limit(600)
                .with_node_limit(100_000)
                .run(&rules_with_identity())
        };
        let fixed = run(BackoffConfig::fixed(1, 2));
        let expo = run(BackoffConfig {
            fruitless_threshold: 1,
            mute_iters: 2,
            exponential: true,
            max_mute_iters: 64,
        });
        assert!(fixed.saturated(), "{:?}", fixed.stop_reason);
        assert!(expo.saturated(), "{:?}", expo.stop_reason);
        // saturation is the same closure either way
        assert_eq!(
            fixed.egraph.total_number_of_nodes(),
            expo.egraph.total_number_of_nodes()
        );
        assert_eq!(
            fixed.egraph.number_of_classes(),
            expo.egraph.number_of_classes()
        );
        // ... but the doubling mute visits far fewer wasted candidates
        let wasted_fixed = rule_candidates(&fixed, "identity-add");
        let wasted_expo = rule_candidates(&expo, "identity-add");
        assert!(
            wasted_expo < wasted_fixed,
            "exponential backoff must probe the fruitless rule less: {wasted_expo} vs {wasted_fixed}"
        );
    }

    /// `candidates_visited` must aggregate consistently across search
    /// modes: every rule appears exactly once per iteration (no
    /// double-count when an un-mute's catch-up search and a later
    /// verification sweep land in different iterations), muted rules
    /// report zero visits, and a delta-mode run never visits more
    /// candidates than the same run with delta disabled (full sweeps
    /// every iteration), while reaching the same exact closure.
    #[test]
    fn delta_candidate_counts_are_consistent_with_full_sweeps() {
        let expr = parse_rec_expr("(+ (+ a b) (+ (+ c d) (+ e f)))").unwrap();
        let run = |delta: bool| -> Runner<Arith, ()> {
            let runner = Runner::<Arith, ()>::default()
                .with_expr(&expr)
                .with_scheduler(Scheduler::Sampling {
                    match_limit: 8,
                    seed: 3,
                })
                .with_backoff(BackoffConfig {
                    fruitless_threshold: 1,
                    mute_iters: 2,
                    ..BackoffConfig::default()
                })
                .with_exact_saturation()
                .with_iter_limit(2000)
                .with_node_limit(100_000);
            let runner = if delta {
                runner
            } else {
                runner.without_delta_search()
            };
            runner.run(&rules_with_identity())
        };
        let with_delta = run(true);
        let without = run(false);
        assert!(with_delta.saturated(), "{:?}", with_delta.stop_reason);
        assert!(without.saturated(), "{:?}", without.stop_reason);
        // same exact closure either way
        assert_eq!(
            with_delta.egraph.total_number_of_nodes(),
            without.egraph.total_number_of_nodes()
        );
        let n_rules = rules_with_identity().len();
        for it in &with_delta.iterations {
            // one stats row per rule per iteration — a mode switch never
            // records (and so never counts) a rule twice
            assert_eq!(it.rules.len(), n_rules);
            let mut names: Vec<&str> = it.rules.iter().map(|r| r.rule.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), n_rules, "duplicate rule rows in iteration");
            for r in &it.rules {
                if r.muted {
                    assert_eq!(r.candidates, 0, "muted rule visited candidates");
                    assert!(!r.delta, "muted rows are not delta rows");
                }
                // candidates are counted at search time; egraph_classes
                // after rebuild, where each union merges away a class
                assert!(
                    r.candidates <= it.egraph_classes + it.unions,
                    "visited more candidates than classes existed at search time"
                );
            }
        }
        // both modes actually exercised: the delta run mixes delta rows
        // and full-sweep rows (first search, verification sweeps), the
        // no-delta run records none — and the aggregate is the plain
        // row sum either way, so BENCH_* numbers aggregate identically
        // across modes
        let rows = |r: &Runner<Arith, ()>, delta: bool| -> usize {
            r.iterations
                .iter()
                .flat_map(|it| &it.rules)
                .filter(|row| row.delta == delta && !row.muted)
                .count()
        };
        assert!(rows(&with_delta, true) > 0, "delta mode never used");
        assert!(rows(&with_delta, false) > 0, "no full sweeps recorded");
        assert_eq!(rows(&without, true), 0, "no-delta run recorded delta rows");
        // a delta row visits at most the classes the full sweep of the
        // same iteration would have visited — spot-check the identity
        // rule, which matches every `+` class on a full sweep
        for it in &with_delta.iterations {
            let full_add: Option<usize> = it
                .rules
                .iter()
                .find(|r| r.rule == "comm-add" && !r.delta && !r.muted)
                .map(|r| r.candidates);
            if let (Some(full), Some(delta_row)) = (
                full_add,
                it.rules
                    .iter()
                    .find(|r| r.rule == "identity-add" && r.delta),
            ) {
                assert!(
                    delta_row.candidates <= full,
                    "delta visited more + classes than a same-iteration full sweep"
                );
            }
        }
    }

    /// Per-region convergence freezing (workload mode): with one root
    /// that saturates almost immediately and one that needs many
    /// sampled iterations, the fast region must freeze — visibly, in
    /// `Iteration::frozen_regions` — and stay frozen to the end, the
    /// run must stop on `RegionsConverged`, and the extracted best
    /// terms must match a run without region tracking (freezing does
    /// not change the plans).
    #[test]
    fn converged_region_freezes_and_plans_are_unchanged() {
        let fast = parse_rec_expr("(+ p q)").unwrap();
        // AC-heavy with redundant double negations: the best term is
        // strictly smaller than the input, so plan equality below is
        // not vacuous.
        let slow =
            parse_rec_expr("(+ (+ a (neg (neg b))) (+ (+ c d) (+ (neg (neg e)) f)))").unwrap();
        let mut rules = rules();
        rules.push(Rewrite::new("neg-neg", "(neg (neg ?a))", "?a").unwrap());
        let run = |regions: bool| -> Runner<Arith, ()> {
            let runner = Runner::<Arith, ()>::default()
                .with_expr(&fast)
                .with_expr(&slow)
                .with_scheduler(Scheduler::Sampling {
                    match_limit: 2,
                    seed: 11,
                })
                .with_iter_limit(400)
                .with_node_limit(100_000);
            let runner = if regions {
                runner.with_regions(RegionConfig::default())
            } else {
                runner
            };
            runner.run(&rules)
        };
        let frozen_run = run(true);
        assert_eq!(
            frozen_run.stop_reason,
            Some(StopReason::RegionsConverged),
            "every region must converge"
        );
        // the fast region freezes while the slow one still works …
        let first_freeze = frozen_run
            .iterations
            .iter()
            .position(|it| it.frozen_regions == vec![true, false])
            .expect("fast region must freeze before the slow one");
        // … and never thaws (region mode has no unfreeze-retry)
        for it in &frozen_run.iterations[first_freeze..] {
            assert!(it.frozen_regions[0], "fast region thawed");
        }
        // after the freeze, the fast region's exclusive classes are out
        // of every candidate set: no candidate total may exceed the
        // graph minus that region's exclusive classes
        let masks = frozen_run.egraph.reachability_masks(&frozen_run.roots);
        let fast_exclusive = masks.values().filter(|&&m| m == 0b01).count();
        assert!(fast_exclusive > 0, "fast region has exclusive classes");
        for it in &frozen_run.iterations[first_freeze..] {
            for r in &it.rules {
                assert!(
                    r.candidates <= it.egraph_classes - fast_exclusive.min(it.egraph_classes),
                    "a rule searched a frozen region: {} candidates, {} classes, {} frozen",
                    r.candidates,
                    it.egraph_classes,
                    fast_exclusive
                );
            }
        }
        // freezing changes how much is searched, not what is extracted:
        // the fast root's best term is identical, and the slow root's
        // best cost matches (AC tie-breaking between equal-size trees
        // may differ; both runs must find the neg-neg-free minimum)
        let plain = run(false);
        let best = |r: &Runner<Arith, ()>| -> Vec<(f64, String)> {
            let ext = crate::extract::Extractor::new(&r.egraph, crate::extract::AstSize);
            r.roots
                .iter()
                .map(|&root| {
                    let (cost, term) = ext.find_best(root).expect("extractable");
                    (cost, term.to_string())
                })
                .collect()
        };
        let (frozen_best, plain_best) = (best(&frozen_run), best(&plain));
        assert_eq!(frozen_best[0], plain_best[0], "fast plan changed");
        assert_eq!(frozen_best[1].0, plain_best[1].0, "slow plan cost changed");
        // 6 leaves under + (11 nodes), both neg-negs rewritten away
        assert_eq!(frozen_best[1].0, 11.0, "double negations survived");
        // and the total matching work is strictly lower with freezing
        let visits = |r: &Runner<Arith, ()>| -> usize {
            r.iterations
                .iter()
                .flat_map(|it| &it.rules)
                .map(|r| r.candidates)
                .sum()
        };
        assert!(visits(&frozen_run) < visits(&plain));
    }

    #[test]
    fn per_rule_unions_sum_to_apply_unions() {
        let expr = parse_rec_expr("(* (+ x y) z)").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules());
        for it in &runner.iterations {
            let per_rule: usize = it.rules.iter().map(|r| r.unions).sum();
            assert!(per_rule <= it.unions, "rebuild can only add unions");
        }
    }

    /// Which flipped `(+ b a)` forms exist after one sampled iteration —
    /// the observable trace of *which* matches the sampler picked.
    fn sampled_flips(rule_order: &[Rewrite<Arith, ()>]) -> Vec<String> {
        let mut runner = Runner::<Arith, ()>::default().with_scheduler(Scheduler::Sampling {
            match_limit: 2,
            seed: 99,
        });
        let pairs = [
            ("a", "b"),
            ("c", "d"),
            ("e", "f"),
            ("g", "h"),
            ("i", "j"),
            ("k", "l"),
        ];
        for (l, r) in pairs {
            let e = parse_rec_expr(&format!("(+ {l} {r})")).unwrap();
            runner = runner.with_expr(&e);
        }
        let runner = runner.with_iter_limit(1).run(rule_order);
        let mut flipped = Vec::new();
        for (l, r) in pairs {
            let e = parse_rec_expr::<Arith>(&format!("(+ {r} {l})")).unwrap();
            if runner.egraph.lookup_expr(&e).is_some() {
                flipped.push(format!("(+ {r} {l})"));
            }
        }
        flipped
    }

    #[test]
    fn sampling_is_deterministic_per_rule_under_reordering() {
        let fwd = rules();
        let mut rev = rules();
        rev.reverse();
        let a = sampled_flips(&fwd);
        let b = sampled_flips(&rev);
        assert!(!a.is_empty(), "match_limit 2 of 6 must flip something");
        assert!(
            a.len() < 6,
            "sampling must not apply every comm-add match in one iteration"
        );
        assert_eq!(
            a, b,
            "which matches a rule samples must not depend on rule order"
        );
        // and repeated runs are identical outright
        assert_eq!(a, sampled_flips(&fwd));
    }
}
