//! The concurrent optimizer front-end — a **two-tier** serving stack.
//!
//! Request lifecycle:
//!
//! ```text
//! request ── fingerprint ──► cache hit? ── instantiate + cost re-check ──► serve (µs)
//!                │ miss                         │ re-check failed
//!                ▼                              ▼
//!        in-flight already? ──yes──► ticket (coalesce)     inline pipeline
//!                │ no
//!                ▼
//!        bounded worker queue ──full──► reject (retry-after) / run inline
//!                │ enqueued
//!                ▼
//!        worker ── translate → saturate → extract → lower ──► cache + wake tickets (ms)
//! ```
//!
//! * **Tier 1 — the synchronous fast path.** Warm hits run entirely on
//!   the caller's thread: fingerprint, a *read-locked* probe of the
//!   sharded cache, α-instantiation and the cost re-check. They never
//!   touch the worker queue, the inflight table, or any exclusive lock —
//!   provable from telemetry: a 100%-hit run records zero
//!   `service.queue_wait` spans.
//! * **Tier 2 — the non-blocking slow path.** Misses register in a
//!   *striped* single-flight table (same sharding arity as the cache)
//!   and enter a **bounded** worker queue. [`OptimizerService::try_optimize`]
//!   never blocks: it returns the hit, a [`Ticket`] to poll/wait on, or —
//!   when the queue is full — a typed [`ServiceError::Overloaded`]
//!   rejection with a retry-after hint, so one thread can keep thousands
//!   of requests in flight and overload degrades into explicit
//!   backpressure instead of unbounded buffering. The blocking
//!   [`OptimizerService::optimize`] keeps its total API by running the
//!   pipeline inline when the queue is full (caller-runs throttling).
//! * **Hits** never run saturation: the cached template is α-instantiated
//!   with the caller's symbols and re-priced under the caller's concrete
//!   metadata ([`spores_core::plan_cost`]); if the template prices worse
//!   than the caller's own input plan (beyond a small slack for
//!   estimator drift, [`COST_SLACK`]) — possible when sizes drifted
//!   within a sparsity bucket — the hit is rejected and the request falls
//!   through to the full pipeline, so a hit is never meaningfully worse
//!   than what greedy re-optimization would have returned for the input.
//! * **Single-flight**: concurrent identical fingerprints run the
//!   pipeline once; the rest wait on the same computation. A panicking
//!   pipeline resolves every waiter with a typed
//!   [`ServiceError::WorkerPanic`] and drains its inflight entry — no
//!   leaked senders, no permanently wedged key.
//! * **Size-pinned templates** (plans that embed concrete dimension
//!   constants, see [`spores_core::Optimized::size_polymorphic`]) are
//!   only reused at exactly the sizes they were optimized for.

use crate::cache::{CacheEntry, CachedPlan, PlanTemplate, ShardedCache};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::workload::{CachedWorkloadPlan, ServedWorkload, WorkloadRequest};
use spores_core::{
    plan_cost, workload_plan_cost, Optimized, Optimizer, OptimizerConfig, PhaseTimings, VarMeta,
};
use spores_ir::{
    fingerprint, fingerprint_workload, ExprArena, Fingerprint, LeafClass, NodeId, Shape, Symbol,
};
use spores_pool::{TrySubmitError, WorkerPool};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Relative slack for the hit-path cost re-check. The re-check exists to
/// catch *regime-crossing* staleness — a cached plan that materializes
/// something huge at the caller's sizes prices orders of magnitude worse
/// than the caller's own plan. It must tolerate estimator-context drift:
/// the pipeline prices plans against the saturated e-graph's merged
/// (tightest) sparsity estimates, while the re-check prices against a
/// fresh graph, which can legitimately disagree by a fraction of a
/// percent on an optimal plan.
const COST_SLACK: f64 = 0.02;
const COST_EPS: f64 = 1e-6;

/// Configuration of an [`OptimizerService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Pipeline configuration used for cache misses.
    pub optimizer: OptimizerConfig,
    /// Cache shards (read-locked contention domains); also the stripe
    /// count of the single-flight table.
    pub shards: usize,
    /// Total cached plan templates across shards.
    pub capacity: usize,
    /// Worker threads running the pipeline for misses.
    pub workers: usize,
    /// Size-pinned variants kept per canonical fingerprint.
    pub max_variants: usize,
    /// Bounded miss-queue capacity (jobs buffered beyond the workers).
    /// When full, [`OptimizerService::try_optimize`] rejects with
    /// [`ServiceError::Overloaded`] and [`OptimizerService::optimize`]
    /// runs the pipeline inline on the caller's thread.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            optimizer: OptimizerConfig::default(),
            shards: 8,
            capacity: 1024,
            workers: 4,
            max_variants: 8,
            queue_capacity: 256,
        }
    }
}

/// One optimization request.
#[derive(Clone, Debug)]
pub struct Request {
    pub arena: ExprArena,
    pub root: NodeId,
    pub vars: HashMap<Symbol, VarMeta>,
}

impl Request {
    pub fn new(arena: ExprArena, root: NodeId, vars: HashMap<Symbol, VarMeta>) -> Request {
        Request { arena, root, vars }
    }
}

/// How a request was satisfied.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Served from the plan cache.
    Hit,
    /// Ran the full pipeline.
    Miss,
    /// Waited on an identical in-flight optimization.
    Coalesced,
}

/// A served plan.
#[derive(Clone, Debug)]
pub struct Served {
    pub arena: ExprArena,
    pub root: NodeId,
    /// `NnzCost` estimate of the served plan. For misses this is the
    /// pipeline's estimate (priced against the saturated e-graph's merged
    /// sparsity bounds); for hits it is the re-check's fresh-graph
    /// estimate under the caller's metadata. The two can differ by a
    /// fraction of a percent on the same plan.
    pub cost: f64,
    pub source: PlanSource,
    /// End-to-end service latency for this request.
    pub latency: Duration,
    /// Pipeline phase timings (of the cached run, for hits).
    pub timings: PhaseTimings,
    /// Saturation facts of the producing pipeline run (cached, for hits):
    /// fixpoint reached, wall-clock budget tripped, e-graph size.
    pub converged: bool,
    pub timed_out: bool,
    pub e_nodes: usize,
}

/// Service-level failure.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The request could not be fingerprinted or optimized.
    Invalid(String),
    /// The worker pool is gone (service shut down mid-request).
    Shutdown,
    /// The bounded miss queue is full — explicit backpressure. Retry
    /// after the hint (a heuristic: current depth × a typical per-job
    /// compile time), or fall back to [`OptimizerService::optimize`],
    /// which absorbs overload by running the pipeline inline.
    Overloaded {
        /// Jobs queued (but not yet running) at rejection time.
        queue_depth: usize,
        /// The configured queue capacity.
        capacity: usize,
        /// Suggested backoff before retrying.
        retry_after: Duration,
    },
    /// The worker running this request's (or its coalesced leader's)
    /// pipeline panicked. The inflight entry has been drained — an
    /// immediate retry starts a fresh flight.
    WorkerPanic(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServiceError::Shutdown => write!(f, "optimizer service shut down"),
            ServiceError::Overloaded {
                queue_depth,
                capacity,
                retry_after,
            } => write!(
                f,
                "optimizer service overloaded ({queue_depth}/{capacity} queued); retry after {retry_after:?}"
            ),
            ServiceError::WorkerPanic(m) => write!(f, "optimizer worker panicked: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// How an in-flight pipeline run concluded for its waiters.
#[derive(Clone, Debug)]
enum FlightError {
    /// The pipeline returned an error.
    Failed(String),
    /// The pipeline panicked; the worker survived, the flight did not.
    Panicked(String),
    /// The flight was never enqueued: the bounded queue was full and the
    /// submitter rejected, bouncing any waiters that coalesced onto it.
    Rejected,
}

type FlightResult = Result<Arc<CachedPlan>, FlightError>;
type InflightStripe = Mutex<HashMap<String, Vec<Sender<FlightResult>>>>;

struct Job {
    request: Request,
    fp: Fingerprint,
}

struct Inner {
    config: ServiceConfig,
    cache: ShardedCache,
    /// Workload-level plan cache: one entry per whole statement bundle.
    workload_cache: ShardedCache<CachedWorkloadPlan>,
    stats: ServiceStats,
    /// canon → waiters (single-flight registry), striped by fingerprint
    /// hash like the cache shards so concurrent misses on different
    /// shapes don't serialize on one global mutex. The submitting
    /// request's own sender is registered too, so the worker resolves
    /// everyone the same way.
    inflight: Vec<InflightStripe>,
    /// Test hook: panic inside the next N pipeline runs (see
    /// [`OptimizerService::inject_pipeline_panics`]).
    panic_injections: AtomicU32,
}

impl Inner {
    fn stripe(&self, fp: &Fingerprint) -> &InflightStripe {
        &self.inflight[(fp.hash() as usize) % self.inflight.len()]
    }

    /// Lock an inflight stripe, recovering from poisoning: the table
    /// only sees plain map/vec operations while locked, so state behind
    /// a poisoned lock is structurally sound — a panicked flight must
    /// degrade its stripe, not wedge every future miss that hashes here.
    fn lock_stripe<'a>(
        stripe: &'a InflightStripe,
    ) -> std::sync::MutexGuard<'a, HashMap<String, Vec<Sender<FlightResult>>>> {
        stripe.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Run the full pipeline and package the outcome as a cacheable plan.
    fn run_pipeline(&self, request: &Request, fp: &Fingerprint) -> Result<Arc<CachedPlan>, String> {
        if self.panic_injections.load(Ordering::Relaxed) > 0
            && self
                .panic_injections
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        {
            panic!("injected pipeline panic (test hook)");
        }
        let _span = spores_telemetry::span!("service.compile");
        let optimizer = Optimizer::new(self.config.optimizer.clone());
        let got: Optimized = optimizer
            .optimize(&request.arena, request.root, &request.vars)
            .map_err(|e| e.to_string())?;
        // α-rename the optimized plan into template space ($0, $1, …)
        let (tpl_arena, tpl_root) = got.arena.rename_vars(got.root, &fp.to_template_map());
        let plan = Arc::new(CachedPlan {
            template: PlanTemplate {
                arena: tpl_arena,
                root: tpl_root,
            },
            cost: got.cost_after,
            timings: got.timings,
            converged: got.saturation.converged,
            timed_out: matches!(
                got.saturation.stop_reason,
                Some(spores_egraph::StopReason::TimeLimit(_))
            ),
            e_nodes: got.saturation.e_nodes,
            size_polymorphic: got.size_polymorphic,
            slot_shapes: slot_shapes(fp, &request.vars),
        });
        if !got.fell_back {
            self.cache.insert(fp, plan.clone());
        }
        Ok(plan)
    }

    /// Resolve the in-flight entry for this fingerprint, waking every
    /// waiter and removing the key — including after a panic, so the
    /// flight's coalesced waiters are drained rather than leaked.
    fn resolve(&self, fp: &Fingerprint, result: &FlightResult) {
        let waiters = Self::lock_stripe(self.stripe(fp)).remove(fp.canon());
        for tx in waiters.into_iter().flatten() {
            // a waiter that gave up (dropped its receiver) is fine to miss
            let _ = tx.send(result.clone());
        }
    }
}

/// A thread-safe, memoizing optimizer front-end. See the module docs.
pub struct OptimizerService {
    inner: Arc<Inner>,
    pool: WorkerPool<Job>,
}

/// Per-slot concrete shapes of a request, in fingerprint slot order.
fn slot_shapes(fp: &Fingerprint, vars: &HashMap<Symbol, VarMeta>) -> Vec<Shape> {
    fp.slots()
        .iter()
        .map(|s| vars.get(s).map_or(Shape::scalar(), |m| m.shape))
        .collect()
}

impl OptimizerService {
    pub fn new(mut config: ServiceConfig) -> OptimizerService {
        let workers = config.workers.max(1);
        // Each pipeline run may itself fan rule search across a scoped
        // pool; clamp its thread budget so `workers` concurrent
        // saturations don't oversubscribe the host.
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let budget = (host / workers).max(1);
        config.optimizer.parallel.threads = config.optimizer.parallel.threads.min(budget);
        // the queue must at least fit one job per worker or the pool
        // could idle while try_optimize rejects
        let queue_capacity = config.queue_capacity.max(workers);
        let stats = ServiceStats::default();
        let instruments = stats.cache_instruments();
        let stripes = config.shards.max(1);
        let inner = Arc::new(Inner {
            cache: ShardedCache::new(config.shards, config.capacity, config.max_variants)
                .with_instruments(instruments.clone()),
            workload_cache: ShardedCache::new(config.shards, config.capacity, config.max_variants)
                .with_instruments(instruments),
            stats,
            inflight: (0..stripes).map(|_| Mutex::new(HashMap::new())).collect(),
            panic_injections: AtomicU32::new(0),
            config,
        });
        let pool = {
            let inner = inner.clone();
            WorkerPool::bounded("spores-opt", workers, queue_capacity, move |job: Job| {
                // A panicking pipeline must still resolve the in-flight
                // entry — otherwise the submitter and every coalesced
                // waiter block on their receivers forever. The panic is
                // surfaced to them as a typed FlightError::Panicked.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner
                        .run_pipeline(&job.request, &job.fp)
                        .map_err(FlightError::Failed)
                }))
                .unwrap_or_else(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "optimizer pipeline panicked".to_string());
                    inner.stats.worker_panics.inc();
                    Err(FlightError::Panicked(msg))
                });
                inner.resolve(&job.fp, &result);
            })
        };
        OptimizerService { inner, pool }
    }

    /// Live counters (evictions summed over both plan caches).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(
            self.inner.cache.evictions() + self.inner.workload_cache.evictions(),
            self.pool.queue_depth(),
        )
    }

    /// Latency quantile (µs upper bound) over all served requests.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        self.inner.stats.latency.quantile_us(q)
    }

    /// Prometheus-style text exposition of the service metrics:
    /// hits/misses/coalesced/cost-rejections/evictions, the backpressure
    /// gauges (`spores_service_queue_depth`, backpressure
    /// `spores_service_rejections`, `spores_service_inline_runs`), the
    /// cache contention instruments
    /// (`spores_service_cache_probe_contended`,
    /// `spores_service_shard_lock_wait_us`,
    /// `spores_service_cache_shard_poisoned`) plus the request latency
    /// histogram with explicit `le="<µs>"` bucket bounds. Serve this as
    /// a scrape endpoint body or dump it for ad-hoc inspection.
    pub fn metrics_text(&self) -> String {
        self.inner.stats.render_text(
            self.inner.cache.evictions() + self.inner.workload_cache.evictions(),
            self.pool.queue_depth(),
        )
    }

    /// Write the process-global telemetry journal as Chrome trace-event
    /// JSON to `path`, draining it (collection must have been enabled,
    /// e.g. via `OptimizerConfig::telemetry` on this service's
    /// pipeline config). Load the file in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn dump_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        spores_telemetry::dump_chrome_trace(path)
    }

    /// Number of cached plan templates.
    pub fn cached_plans(&self) -> usize {
        self.inner.cache.len()
    }

    /// Jobs waiting in the bounded miss queue right now.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Capacity of the bounded miss queue.
    pub fn queue_capacity(&self) -> usize {
        self.pool.capacity().unwrap_or(usize::MAX)
    }

    /// Test hook: make the next `n` pipeline runs panic (on whichever
    /// thread executes them) to exercise worker-panic containment.
    #[doc(hidden)]
    pub fn inject_pipeline_panics(&self, n: u32) {
        self.inner.panic_injections.store(n, Ordering::Relaxed);
    }

    /// Optimize one request, consulting the plan cache. Blocking: a miss
    /// waits for the pipeline; when the bounded queue is full the
    /// pipeline runs inline on this thread (caller-runs backpressure).
    pub fn optimize(&self, request: Request) -> Result<Served, ServiceError> {
        let mut req_span = spores_telemetry::span!("service.request");
        let result = self.optimize_inner(request);
        if let Ok(served) = &result {
            req_span.arg(
                "source",
                match served.source {
                    PlanSource::Hit => "hit",
                    PlanSource::Miss => "miss",
                    PlanSource::Coalesced => "coalesced",
                },
            );
        }
        result
    }

    fn optimize_inner(&self, request: Request) -> Result<Served, ServiceError> {
        let t0 = Instant::now();
        let fp = self.fingerprint_request(&request)?;

        if let Some(served) = self.try_hit(&request, &fp, t0) {
            return Ok(served);
        }

        match self.submit_blocking(&request, &fp) {
            Submission::Wait { rx, coalesced } => self.finish(&request, &fp, rx, coalesced, t0),
            Submission::Inline => {
                let result = self
                    .inner
                    .run_pipeline(&request, &fp)
                    .map_err(FlightError::Failed);
                self.inner.resolve(&fp, &result);
                self.conclude_miss(&request, &fp, result, PlanSource::Miss, t0)
            }
        }
    }

    /// Non-blocking front door: returns the hit synchronously, a
    /// [`Ticket`] for an in-flight miss, or a typed
    /// [`ServiceError::Overloaded`] rejection when the bounded queue is
    /// full. One thread can hold any number of outstanding tickets and
    /// poll them, which is what lets a single front-end thread multiplex
    /// thousands of in-flight requests.
    pub fn try_optimize(&self, request: Request) -> Result<TryOptimize<'_>, ServiceError> {
        let t0 = Instant::now();
        let fp = self.fingerprint_request(&request)?;

        if let Some(served) = self.try_hit(&request, &fp, t0) {
            // synchronous completion: give the hit its request span here
            // (pending tickets conclude later, outside any span scope)
            let mut req_span = spores_telemetry::span!("service.request");
            req_span.arg("source", "hit");
            return Ok(TryOptimize::Ready(served));
        }

        match self.register(&fp) {
            Registration::Coalesced(rx) => Ok(TryOptimize::Pending(Ticket {
                svc: self,
                request,
                fp,
                rx,
                coalesced: true,
                t0,
                done: false,
            })),
            Registration::First(rx) => {
                let job = Job {
                    request: request.clone(),
                    fp: fp.clone(),
                };
                match self.pool.try_submit(job) {
                    Ok(()) => Ok(TryOptimize::Pending(Ticket {
                        svc: self,
                        request,
                        fp,
                        rx,
                        coalesced: false,
                        t0,
                        done: false,
                    })),
                    Err(TrySubmitError::Full(_)) => {
                        // reject-with-retry-after: drain our entry and
                        // bounce any waiters that coalesced onto it in
                        // the registration window
                        self.inner.stats.rejections.inc();
                        self.inner.resolve(&fp, &Err(FlightError::Rejected));
                        Err(self.overloaded())
                    }
                    Err(TrySubmitError::Shutdown(_)) => {
                        // dropping the entry disconnects racing waiters,
                        // whose recv then reports Shutdown too
                        Inner::lock_stripe(self.inner.stripe(&fp)).remove(fp.canon());
                        Err(ServiceError::Shutdown)
                    }
                }
            }
        }
    }

    /// Optimize a whole workload: hits are served inline, misses fan out
    /// across the worker pool concurrently (instead of one blocking
    /// round-trip per statement).
    pub fn optimize_batch(&self, requests: Vec<Request>) -> Vec<Result<Served, ServiceError>> {
        // One span for the whole batch: per-request spans would
        // interleave begin/ends on this thread (all submits, then all
        // waits), breaking the stack discipline the trace format needs.
        let _span = spores_telemetry::span!("service.batch", requests = requests.len());
        enum Pending {
            Done(Result<Served, ServiceError>),
            Wait {
                request: Request,
                fp: Fingerprint,
                rx: Receiver<FlightResult>,
                coalesced: bool,
                t0: Instant,
            },
        }
        let pending: Vec<Pending> = requests
            .into_iter()
            .map(|request| {
                // per-request clock: a request's latency spans from when
                // *it* starts processing (not from batch start) to when
                // its result is ready — for waiters that includes the
                // in-flight pipeline run they queue behind
                let t0 = Instant::now();
                let fp = match self.fingerprint_request(&request) {
                    Ok(fp) => fp,
                    Err(e) => return Pending::Done(Err(e)),
                };
                if let Some(served) = self.try_hit(&request, &fp, t0) {
                    return Pending::Done(Ok(served));
                }
                match self.submit_blocking(&request, &fp) {
                    Submission::Wait { rx, coalesced } => Pending::Wait {
                        request,
                        fp,
                        rx,
                        coalesced,
                        t0,
                    },
                    Submission::Inline => {
                        let result = self
                            .inner
                            .run_pipeline(&request, &fp)
                            .map_err(FlightError::Failed);
                        self.inner.resolve(&fp, &result);
                        Pending::Done(self.conclude_miss(
                            &request,
                            &fp,
                            result,
                            PlanSource::Miss,
                            t0,
                        ))
                    }
                }
            })
            .collect();
        pending
            .into_iter()
            .map(|p| match p {
                Pending::Done(r) => r,
                Pending::Wait {
                    request,
                    fp,
                    rx,
                    coalesced,
                    t0,
                } => self.finish(&request, &fp, rx, coalesced, t0),
            })
            .collect()
    }

    /// Optimize a whole workload bundle as ONE unit: a single
    /// workload-level fingerprint keys the cache, a hit re-instantiates
    /// the entire multi-root template (µs), and a miss runs the shared
    /// one-pass pipeline ([`spores_core::Optimizer::optimize_workload`])
    /// inline and caches the α-renamed result.
    pub fn optimize_workload(
        &self,
        request: WorkloadRequest,
    ) -> Result<ServedWorkload, ServiceError> {
        let mut req_span = spores_telemetry::span!(
            "service.request",
            kind = "workload",
            roots = request.workload.roots.len(),
        );
        let t0 = Instant::now();
        let classes: HashMap<Symbol, LeafClass> = request
            .vars
            .iter()
            .map(|(&s, m)| (s, LeafClass::classify(m.shape, m.sparsity)))
            .collect();
        let fp = fingerprint_workload(&request.workload.arena, &request.workload.roots, &classes)
            .map_err(|e| ServiceError::Invalid(e.to_string()))?;
        let shapes = slot_shapes(&fp, &request.vars);

        if let Some(plan) = self.inner.workload_cache.get(&fp, &shapes) {
            let probe_span = spores_telemetry::span!("service.cache_probe", kind = "workload");
            let outcome = self.instantiate_workload(&request, &fp, &plan);
            drop(probe_span);
            match outcome {
                Ok(mut served) => {
                    self.inner.stats.hits.add(1);
                    req_span.arg("source", "hit");
                    served.latency = t0.elapsed();
                    self.inner.stats.latency.record(served.latency);
                    return Ok(served);
                }
                Err(RejectedHit) => {
                    self.inner.stats.cost_rejections.add(1);
                }
            }
        }

        // miss: run the shared pipeline inline (workload compiles are
        // whole-program requests — rare and heavyweight enough that the
        // per-statement worker pool's coalescing matters little here).
        // The pipeline's own output is served directly; only the cache
        // keeps the α-renamed template copy.
        let (plan, arena, roots) = self.run_workload_pipeline(&request, &fp, &shapes)?;
        self.inner.stats.misses.add(1);
        req_span.arg("source", "miss");
        let latency = t0.elapsed();
        self.inner.stats.latency.record(latency);
        Ok(ServedWorkload {
            arena,
            roots,
            cost: plan.cost,
            source: PlanSource::Miss,
            latency,
            timings: plan.timings,
            converged: plan.converged,
            timed_out: plan.timed_out,
            e_nodes: plan.e_nodes,
        })
    }

    /// Run the workload pipeline, cache the α-renamed multi-root
    /// template, and return it along with the pipeline's direct output
    /// (already in the caller's symbols — no re-instantiation needed).
    #[allow(clippy::type_complexity)]
    fn run_workload_pipeline(
        &self,
        request: &WorkloadRequest,
        fp: &Fingerprint,
        shapes: &[Shape],
    ) -> Result<(Arc<CachedWorkloadPlan>, ExprArena, Vec<(Symbol, NodeId)>), ServiceError> {
        let _span = spores_telemetry::span!("service.compile", kind = "workload");
        let optimizer = Optimizer::new(self.inner.config.optimizer.clone());
        let got = optimizer
            .optimize_workload(&request.workload, &request.vars)
            .map_err(|e| ServiceError::Invalid(e.to_string()))?;
        let root_ids: Vec<NodeId> = got.roots.iter().map(|&(_, id)| id).collect();
        let (tpl_arena, tpl_roots) = got
            .arena
            .rename_vars_multi(&root_ids, &fp.to_template_map());
        let cost = workload_plan_cost(&got.arena, &got.roots, &request.vars)
            .map_err(|e| ServiceError::Invalid(e.to_string()))?;
        let plan = Arc::new(CachedWorkloadPlan {
            arena: tpl_arena,
            roots: tpl_roots,
            cost,
            timings: got.timings,
            converged: got.saturation.converged,
            timed_out: matches!(
                got.saturation.stop_reason,
                Some(spores_egraph::StopReason::TimeLimit(_))
            ),
            e_nodes: got.saturation.e_nodes,
            size_polymorphic: got.size_polymorphic,
            slot_shapes: shapes.to_vec(),
        });
        if !got.fell_back {
            self.inner.workload_cache.insert(fp, plan.clone());
        }
        Ok((plan, got.arena, got.roots))
    }

    /// α-instantiate a workload template for this request's symbols; the
    /// caller's root names are re-attached positionally.
    fn materialize_workload(
        plan: &CachedWorkloadPlan,
        request: &WorkloadRequest,
        fp: &Fingerprint,
    ) -> (ExprArena, Vec<(Symbol, NodeId)>) {
        let (arena, roots) = plan
            .arena
            .rename_vars_multi(&plan.roots, &fp.from_template_map());
        let named = request
            .workload
            .roots
            .iter()
            .map(|&(name, _)| name)
            .zip(roots)
            .collect();
        (arena, named)
    }

    /// Instantiate a cached workload template and re-check its summed
    /// cost against the caller's own statements at the caller's metadata.
    fn instantiate_workload(
        &self,
        request: &WorkloadRequest,
        fp: &Fingerprint,
        plan: &CachedWorkloadPlan,
    ) -> Result<ServedWorkload, RejectedHit> {
        let (arena, roots) = Self::materialize_workload(plan, request, fp);
        let cost = workload_plan_cost(&arena, &roots, &request.vars).map_err(|_| RejectedHit)?;
        let input_cost = workload_plan_cost(
            &request.workload.arena,
            &request.workload.roots,
            &request.vars,
        )
        .map_err(|_| RejectedHit)?;
        if cost > input_cost * (1.0 + COST_SLACK) + COST_EPS {
            return Err(RejectedHit);
        }
        Ok(ServedWorkload {
            arena,
            roots,
            cost,
            source: PlanSource::Hit,
            latency: Duration::ZERO,
            timings: plan.timings,
            converged: plan.converged,
            timed_out: plan.timed_out,
            e_nodes: plan.e_nodes,
        })
    }

    // ---- request plumbing -----------------------------------------------

    fn fingerprint_request(&self, request: &Request) -> Result<Fingerprint, ServiceError> {
        let classes: HashMap<Symbol, LeafClass> = request
            .vars
            .iter()
            .map(|(&s, m)| (s, LeafClass::classify(m.shape, m.sparsity)))
            .collect();
        fingerprint(&request.arena, request.root, &classes)
            .map_err(|e| ServiceError::Invalid(e.to_string()))
    }

    /// The cache-hit fast path: a read-locked cache probe, then
    /// instantiate + cost re-check, all on the caller's thread. No
    /// worker queue, no inflight table, no exclusive lock.
    fn try_hit(&self, request: &Request, fp: &Fingerprint, t0: Instant) -> Option<Served> {
        let mut probe_span = spores_telemetry::span!("service.cache_probe");
        let shapes = slot_shapes(fp, &request.vars);
        let plan = self.inner.cache.get(fp, &shapes)?;
        match self.instantiate(request, fp, &plan) {
            Ok(served) => {
                probe_span.arg("outcome", "hit");
                self.inner.stats.hits.add(1);
                let latency = t0.elapsed();
                self.inner.stats.latency.record(latency);
                Some(Served {
                    latency,
                    source: PlanSource::Hit,
                    ..served
                })
            }
            Err(RejectedHit) => {
                probe_span.arg("outcome", "rejected");
                self.inner.stats.cost_rejections.add(1);
                None
            }
        }
    }

    /// α-instantiate a template for this request's symbols.
    fn materialize(plan: &CachedPlan, fp: &Fingerprint) -> (ExprArena, NodeId) {
        plan.template
            .arena
            .rename_vars(plan.template.root, &fp.from_template_map())
    }

    /// Package a materialized plan with the template's provenance facts
    /// (latency is stamped by the caller once the request concludes).
    fn served(
        plan: &CachedPlan,
        arena: ExprArena,
        root: NodeId,
        cost: f64,
        source: PlanSource,
    ) -> Served {
        Served {
            arena,
            root,
            cost,
            source,
            latency: Duration::ZERO,
            timings: plan.timings,
            converged: plan.converged,
            timed_out: plan.timed_out,
            e_nodes: plan.e_nodes,
        }
    }

    /// Instantiate a cached template for this request and re-check its
    /// cost against the caller's own plan at the caller's metadata.
    fn instantiate(
        &self,
        request: &Request,
        fp: &Fingerprint,
        plan: &CachedPlan,
    ) -> Result<Served, RejectedHit> {
        let (arena, root) = Self::materialize(plan, fp);
        // a template priced worse than the caller's own input plan (or
        // one that no longer type-checks) must not be served
        let cost = plan_cost(&arena, root, &request.vars).map_err(|_| RejectedHit)?;
        let input_cost =
            plan_cost(&request.arena, request.root, &request.vars).map_err(|_| RejectedHit)?;
        if cost > input_cost * (1.0 + COST_SLACK) + COST_EPS {
            return Err(RejectedHit);
        }
        Ok(Self::served(plan, arena, root, cost, PlanSource::Hit))
    }

    /// Register this fingerprint in the striped single-flight table.
    fn register(&self, fp: &Fingerprint) -> Registration {
        let (tx, rx) = channel::<FlightResult>();
        let mut stripe = Inner::lock_stripe(self.inner.stripe(fp));
        match stripe.get_mut(fp.canon()) {
            Some(waiters) => {
                waiters.push(tx);
                Registration::Coalesced(rx)
            }
            None => {
                stripe.insert(fp.canon().to_string(), vec![tx]);
                Registration::First(rx)
            }
        }
    }

    /// Register in the single-flight table and enqueue if first, for the
    /// blocking entry points: a full (or shut down) queue degrades to
    /// running the pipeline inline on the caller's thread.
    fn submit_blocking(&self, request: &Request, fp: &Fingerprint) -> Submission {
        match self.register(fp) {
            Registration::Coalesced(rx) => Submission::Wait {
                rx,
                coalesced: true,
            },
            Registration::First(rx) => {
                let job = Job {
                    request: request.clone(),
                    fp: fp.clone(),
                };
                match self.pool.try_submit(job) {
                    Ok(()) => Submission::Wait {
                        rx,
                        coalesced: false,
                    },
                    Err(TrySubmitError::Full(_)) => {
                        // caller-runs backpressure: our entry stays in
                        // the table so racing duplicates coalesce onto
                        // this inline run; resolve() wakes them
                        self.inner.stats.inline_runs.inc();
                        Submission::Inline
                    }
                    Err(TrySubmitError::Shutdown(_)) => Submission::Inline,
                }
            }
        }
    }

    /// Typed backpressure error with the current queue state.
    fn overloaded(&self) -> ServiceError {
        let queue_depth = self.pool.queue_depth();
        // heuristic retry hint: assume a few ms per queued compile
        let retry_after = Duration::from_millis(((queue_depth as u64 + 1) * 2).min(100));
        ServiceError::Overloaded {
            queue_depth,
            capacity: self.queue_capacity(),
            retry_after,
        }
    }

    /// Wait for the in-flight computation and serve its result.
    fn finish(
        &self,
        request: &Request,
        fp: &Fingerprint,
        rx: Receiver<FlightResult>,
        coalesced: bool,
        t0: Instant,
    ) -> Result<Served, ServiceError> {
        let wait_span = spores_telemetry::span!("service.queue_wait", coalesced = coalesced);
        let result = match rx.recv() {
            Ok(r) => r,
            Err(_) => return Err(ServiceError::Shutdown),
        };
        drop(wait_span);
        let source = if coalesced {
            PlanSource::Coalesced
        } else {
            PlanSource::Miss
        };
        self.conclude_miss(request, fp, result, source, t0)
    }

    /// Run the pipeline on the caller's thread and serve it as a miss —
    /// the shared tail of every degraded path (rejected hit, bounced
    /// flight).
    fn run_inline_miss(
        &self,
        request: &Request,
        fp: &Fingerprint,
        t0: Instant,
    ) -> Result<Served, ServiceError> {
        let plan = self
            .inner
            .run_pipeline(request, fp)
            .map_err(ServiceError::Invalid)?;
        let (arena, root) = Self::materialize(&plan, fp);
        self.inner.stats.misses.add(1);
        let latency = t0.elapsed();
        self.inner.stats.latency.record(latency);
        Ok(Served {
            latency,
            ..Self::served(&plan, arena, root, plan.cost, PlanSource::Miss)
        })
    }

    /// Turn a pipeline result into a served plan for *this* request.
    fn conclude_miss(
        &self,
        request: &Request,
        fp: &Fingerprint,
        result: FlightResult,
        source: PlanSource,
        t0: Instant,
    ) -> Result<Served, ServiceError> {
        let plan = match result {
            Ok(plan) => plan,
            // Our flight leader hit a full queue and bounced us. Only the
            // *leader* (a try_optimize caller) surfaces Overloaded;
            // waiters keep their contract — a plan, at caller-runs cost.
            Err(FlightError::Rejected) => {
                self.inner.stats.inline_runs.inc();
                return self.run_inline_miss(request, fp, t0);
            }
            Err(FlightError::Failed(m)) => return Err(ServiceError::Invalid(m)),
            Err(FlightError::Panicked(m)) => return Err(ServiceError::WorkerPanic(m)),
        };
        // The submitter's result was computed from this very request by
        // the (deterministic) pipeline — serve it as-is; re-checking it
        // could only trigger a pointless identical re-run. A *coalesced*
        // waiter shares a result computed at the submitter's sizes, so it
        // reuses it only under the same admission + cost re-check rule as
        // a cache hit; otherwise it runs its own pipeline inline (the
        // cache now likely holds the template, so this is rare).
        let my_shapes = slot_shapes(fp, &request.vars);
        let served = if source != PlanSource::Coalesced {
            let (arena, root) = Self::materialize(&plan, fp);
            Ok(Self::served(&plan, arena, root, plan.cost, source))
        } else if plan.admits(&my_shapes) {
            self.instantiate(request, fp, &plan)
        } else {
            Err(RejectedHit)
        };
        match served {
            Ok(served) => {
                match source {
                    PlanSource::Coalesced => self.inner.stats.coalesced.add(1),
                    _ => self.inner.stats.misses.add(1),
                };
                let latency = t0.elapsed();
                self.inner.stats.latency.record(latency);
                Ok(Served {
                    latency,
                    source,
                    ..served
                })
            }
            Err(RejectedHit) => {
                self.inner.stats.cost_rejections.add(1);
                self.run_inline_miss(request, fp, t0)
            }
        }
    }
}

/// Outcome of [`OptimizerService::try_optimize`]: either the request
/// completed synchronously on the caller's thread (a warm hit), or it is
/// in flight and the caller holds a [`Ticket`].
#[allow(clippy::large_enum_variant)]
pub enum TryOptimize<'s> {
    /// Completed synchronously (cache hit, served in µs).
    Ready(Served),
    /// In flight: poll or wait on the ticket.
    Pending(Ticket<'s>),
}

/// A claim on an in-flight optimization. Obtained from
/// [`OptimizerService::try_optimize`]; completed by [`Ticket::poll`]
/// (non-blocking) or [`Ticket::wait`] (blocking). Dropping a ticket
/// abandons the request — the flight still completes and populates the
/// cache, the result is simply not delivered.
pub struct Ticket<'s> {
    svc: &'s OptimizerService,
    request: Request,
    fp: Fingerprint,
    rx: Receiver<FlightResult>,
    coalesced: bool,
    t0: Instant,
    done: bool,
}

impl Ticket<'_> {
    /// Did this ticket coalesce onto an identical in-flight request?
    pub fn coalesced(&self) -> bool {
        self.coalesced
    }

    /// Non-blocking completion check: `None` while the flight is still
    /// running, `Some(result)` exactly once when it concludes (later
    /// polls return `None` again — use the first `Some`).
    pub fn poll(&mut self) -> Option<Result<Served, ServiceError>> {
        if self.done {
            return None;
        }
        match self.rx.try_recv() {
            Ok(result) => {
                self.done = true;
                Some(self.conclude(result))
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                self.done = true;
                Some(Err(ServiceError::Shutdown))
            }
        }
    }

    /// Block until the flight concludes. Records a `service.queue_wait`
    /// span for the blocked interval — the span warm hits must never
    /// produce.
    pub fn wait(mut self) -> Result<Served, ServiceError> {
        if self.done {
            return Err(ServiceError::Shutdown);
        }
        let wait_span = spores_telemetry::span!("service.queue_wait", coalesced = self.coalesced);
        let result = match self.rx.recv() {
            Ok(r) => r,
            Err(_) => return Err(ServiceError::Shutdown),
        };
        drop(wait_span);
        self.done = true;
        self.conclude(result)
    }

    fn conclude(&self, result: FlightResult) -> Result<Served, ServiceError> {
        let source = if self.coalesced {
            PlanSource::Coalesced
        } else {
            PlanSource::Miss
        };
        self.svc
            .conclude_miss(&self.request, &self.fp, result, source, self.t0)
    }
}

enum Registration {
    /// An identical request is already in flight; we are a waiter.
    Coalesced(Receiver<FlightResult>),
    /// We are the first; our sender is registered alongside any future
    /// coalescers, and we own submitting the job.
    First(Receiver<FlightResult>),
}

enum Submission {
    Wait {
        rx: Receiver<FlightResult>,
        coalesced: bool,
    },
    Inline,
}

/// Marker: a cached template failed the hit admission/cost re-check.
struct RejectedHit;
