//! Lock-free service counters and a latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (µs): bucket `k` counts
/// requests with `latency_us` in `[2^k, 2^(k+1))` (bucket 0 also takes
/// sub-µs requests, the last bucket everything beyond).
pub const LATENCY_BUCKETS: usize = 32;

/// Histogram over request latencies, log₂-spaced in microseconds.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros() as u64;
        let bucket = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket counts, index `k` covering `[2^k, 2^(k+1))` µs.
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (k, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (k + 1);
            }
        }
        u64::MAX
    }
}

/// Live counters of an [`crate::OptimizerService`].
#[derive(Default)]
pub struct ServiceStats {
    /// Requests served from the cache (template instantiated).
    pub hits: AtomicU64,
    /// Requests that ran the full pipeline.
    pub misses: AtomicU64,
    /// Requests that piggybacked on an identical in-flight optimization.
    pub coalesced: AtomicU64,
    /// Cache hits rejected by the cost re-check (the cached template
    /// priced worse than the caller's own plan at their sizes) and
    /// re-optimized from scratch.
    pub cost_rejections: AtomicU64,
    /// End-to-end request latencies (hits and misses alike).
    pub latency: LatencyHistogram,
}

impl ServiceStats {
    /// Point-in-time copy of the counters. Evictions live on the cache,
    /// not here — `evictions` is filled in by the snapshot's caller
    /// ([`crate::OptimizerService::stats`]).
    pub fn snapshot(&self, evictions: u64) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions,
            cost_rejections: self.cost_rejections.load(Ordering::Relaxed),
            latency_p50_us: self.latency.quantile_us(0.5),
            latency_p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// Plain-value view of [`ServiceStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
    pub cost_rejections: u64,
    pub latency_p50_us: u64,
    pub latency_p99_us: u64,
}

impl StatsSnapshot {
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of requests that avoided the full pipeline.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_us() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap[0], 1); // [1, 2) µs
        assert_eq!(snap[1], 1); // [2, 4) µs
        assert_eq!(snap[9], 1); // [512, 1024) µs
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 4, 8, 16, 500, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert!(h.quantile_us(0.5) <= h.quantile_us(0.99));
        assert!(h.quantile_us(0.99) >= 100_000);
    }

    #[test]
    fn hit_rate() {
        let s = ServiceStats::default();
        s.hits.fetch_add(3, Ordering::Relaxed);
        s.misses.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot(0);
        assert_eq!(snap.requests(), 4);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-12);
    }
}
