//! Schema checker for Chrome trace-event files emitted by
//! `profile_workload --trace-out` (CI runs this against the uploaded
//! artifact).
//!
//! Checks two layers:
//!
//! 1. **Format** — via [`spores_telemetry::validate_chrome_trace`]:
//!    a `traceEvents` array, balanced and properly nested B/E events per
//!    thread, non-decreasing timestamps per thread.
//! 2. **Content** — the saturation phase structure: at least one
//!    `saturation.iter` span, and exactly one `saturation.search`,
//!    `saturation.apply` and `saturation.rebuild` span per iteration.
//!
//! Usage: `trace_check TRACE.json`. Exits non-zero with a diagnostic on
//! any violation.

use spores_telemetry::validate_chrome_trace;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: trace_check TRACE.json");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_check: reading {path}: {e}");
        std::process::exit(1);
    });
    let check = validate_chrome_trace(&text).unwrap_or_else(|e| {
        eprintln!("trace_check: {path}: schema violation: {e}");
        std::process::exit(1);
    });
    let iters = check.spans("saturation.iter");
    if iters == 0 {
        eprintln!("trace_check: {path}: no saturation.iter spans — not an optimizer trace?");
        std::process::exit(1);
    }
    for phase in [
        "saturation.search",
        "saturation.apply",
        "saturation.rebuild",
    ] {
        let n = check.spans(phase);
        if n != iters {
            eprintln!(
                "trace_check: {path}: {n} {phase} spans for {iters} saturation.iter spans \
                 (every iteration must run all three phases exactly once)"
            );
            std::process::exit(1);
        }
    }
    println!(
        "trace OK: {path}: {} events, {iters} saturation iterations, search/apply/rebuild balanced",
        check.events
    );
}
