//! The lock-sharded in-memory event journal and span guards.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of mutex-guarded journal shards. Threads pick a shard by
/// thread id, so writers contend only when more than `SHARDS` threads
/// record simultaneously.
const SHARDS: usize = 16;

/// Journal capacity cap, per shard. A service left tracing for hours
/// must not grow without bound: past the cap new events are counted as
/// dropped instead of stored ([`Journal::dropped`]).
const MAX_EVENTS_PER_SHARD: usize = 1 << 20;

/// A span/event argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<&String> for ArgValue {
    fn from(v: &String) -> Self {
        ArgValue::Str(v.clone())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Event arguments: static keys, owned values.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What an [`Event`] marks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (Chrome `ph: "B"`).
    Begin,
    /// Span closed (Chrome `ph: "E"`).
    End,
    /// Point event with no duration (Chrome `ph: "i"`).
    Mark,
}

/// One journal entry.
#[derive(Clone, Debug)]
pub struct Event {
    pub name: Cow<'static, str>,
    pub kind: EventKind,
    /// Microseconds since the journal's clock epoch (monotonic).
    pub ts_us: u64,
    /// Global allocation order; the total-order tie-break for events in
    /// the same microsecond.
    pub seq: u64,
    /// Recording thread (stable small integer per thread, not the OS
    /// thread id).
    pub tid: u64,
    pub args: Args,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable journal id (allocated on first use, starts at 1).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The lock-sharded event journal. Each recording thread appends to the
/// shard its thread id hashes to; [`Journal::drain`] merges the shards
/// back into one globally ordered sequence.
pub struct Journal {
    shards: Vec<Mutex<Vec<Event>>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    pub fn new() -> Journal {
        Journal {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since this journal's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Append one event (timestamped now, on the caller's thread).
    pub fn record(&self, name: Cow<'static, str>, kind: EventKind, args: Args) {
        let tid = current_tid();
        let event = Event {
            name,
            kind,
            ts_us: self.now_us(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            tid,
            args,
        };
        let mut shard = self.shards[(tid as usize) % SHARDS].lock().unwrap();
        if shard.len() >= MAX_EVENTS_PER_SHARD {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shard.push(event);
    }

    /// Point event.
    pub fn mark(&self, name: impl Into<Cow<'static, str>>, args: Args) {
        self.record(name.into(), EventKind::Mark, args);
    }

    /// Events recorded so far (across all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events refused because a shard hit its capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take every event, leaving the journal empty. The result is one
    /// globally ordered sequence: sorted by timestamp, ties broken by
    /// the global allocation order, so per-thread begin/end nesting is
    /// preserved no matter which shard an event landed in.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.lock().unwrap());
        }
        out.sort_by_key(|e| (e.ts_us, e.seq));
        out
    }
}

/// RAII span handle: records a [`EventKind::Begin`] event on creation
/// (via [`crate::span!`]) and the matching [`EventKind::End`] on drop.
/// Arguments added with [`SpanGuard::arg`] ride on the end event.
pub struct SpanGuard {
    /// `None` = telemetry was disabled at creation; drop is a no-op.
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: Cow<'static, str>,
    end_args: Args,
}

impl SpanGuard {
    /// The inert guard handed out while collection is disabled.
    #[inline(always)]
    pub fn disabled() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// Open a span on the global journal (the [`crate::span!`] macro
    /// checks [`crate::enabled`] first; callers using this directly
    /// should too).
    pub fn begin(name: impl Into<Cow<'static, str>>, args: Args) -> SpanGuard {
        let name = name.into();
        crate::global()
            .journal()
            .record(name.clone(), EventKind::Begin, args);
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                end_args: Vec::new(),
            }),
        }
    }

    /// Attach an argument to the span's end event (e.g. a result only
    /// known once the work completes). No-op on a disabled guard.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(active) = &mut self.active {
            active.end_args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            crate::global()
                .journal()
                .record(active.name, EventKind::End, active.end_args);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    const THREADS: usize = 8;
    const SPANS_PER_THREAD: usize = 200;

    #[test]
    fn concurrent_recorders_preserve_per_thread_nesting() {
        let journal = Journal::new();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..SPANS_PER_THREAD {
                        journal.record("outer".into(), EventKind::Begin, Vec::new());
                        journal.record("inner".into(), EventKind::Begin, Vec::new());
                        journal.record("inner".into(), EventKind::End, Vec::new());
                        journal.record("outer".into(), EventKind::End, Vec::new());
                    }
                });
            }
        });
        assert_eq!(journal.len(), THREADS * SPANS_PER_THREAD * 4);
        assert_eq!(journal.dropped(), 0);
        let events = journal.drain();
        assert!(journal.is_empty(), "drain leaves the journal empty");
        // Replaying each thread's events must show balanced, properly
        // nested begin/end pairs even though shards interleave threads.
        let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        let mut tids = std::collections::BTreeSet::new();
        for e in &events {
            tids.insert(e.tid);
            let stack = stacks.entry(e.tid).or_default();
            match e.kind {
                EventKind::Begin => stack.push(e.name.to_string()),
                EventKind::End => {
                    assert_eq!(stack.pop().as_deref(), Some(&*e.name), "misnested");
                }
                EventKind::Mark => {}
            }
        }
        assert_eq!(tids.len(), THREADS);
        assert!(stacks.values().all(Vec::is_empty), "unbalanced spans");
    }

    #[test]
    fn sharded_flush_is_globally_ordered() {
        let journal = Journal::new();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..SPANS_PER_THREAD {
                        journal.mark("tick", vec![("i", ArgValue::from(i))]);
                    }
                });
            }
        });
        let events = journal.drain();
        assert_eq!(events.len(), THREADS * SPANS_PER_THREAD);
        // Drain merges the shards into (ts, seq) order: timestamps never
        // go backwards, and equal timestamps keep allocation order.
        for pair in events.windows(2) {
            assert!(
                (pair[0].ts_us, pair[0].seq) < (pair[1].ts_us, pair[1].seq),
                "drain output not globally ordered"
            );
        }
        // Per-thread timestamps are monotone too (each thread records in
        // program order) — the invariant the Chrome exporter needs.
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for e in &events {
            if let Some(&prev) = last.get(&e.tid) {
                assert!(e.ts_us >= prev);
            }
            last.insert(e.tid, e.ts_us);
        }
    }

    #[test]
    fn concurrent_span_guards_balance_on_global_journal() {
        let _guard = crate::tests::GLOBAL_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..16 {
                        let _outer = crate::span!("work.outer", thread = t, i = i);
                        let _inner = crate::span!("work.inner");
                    }
                });
            }
        });
        crate::set_enabled(false);
        let events = crate::drain();
        assert_eq!(events.len(), THREADS * 16 * 4);
        // The exported trace of a concurrent run must pass the schema
        // checker: balanced B/E per thread, monotone timestamps.
        let check =
            crate::validate_chrome_trace(&crate::chrome_trace_json(&events)).expect("valid trace");
        assert_eq!(check.spans("work.outer"), (THREADS * 16) as u64);
        assert_eq!(check.spans("work.inner"), (THREADS * 16) as u64);
    }
}
