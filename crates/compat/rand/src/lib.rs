//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to a
//! registry, so the workspace vendors the *small* subset of the rand 0.9
//! API it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer and float ranges, and
//! [`Rng::random_bool`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a high-quality,
//! deterministic, portable PRNG (the same construction rand's own
//! `SmallRng` has used). It is **not** cryptographically secure, exactly
//! like `StdRng` usage here never required; all call sites are test-data
//! generators and match-sampling schedulers that only need determinism
//! and reasonable uniformity.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`]
/// (stands in for `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range, matching rand's behavior.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Map a `u64` to `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(42).random_range(0..1000usize) == c.random_range(0..1000usize)
        });
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-3i8..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(0..u64::MAX);
        let _ = rng.random_range(i64::MIN..i64::MAX);
        let _ = rng.random_range(0..=u64::MAX);
    }
}
