//! Derive hand-coded SystemML rewrites from the relational rules
//! (a narrated slice of the Figure 14 experiment).
//!
//! ```text
//! cargo run --release --example derive_rewrites
//! ```

use spores::core::{canon_of_la, polyterm_isomorphic, VarMeta};
use spores::ir::{ExprArena, Symbol};
use std::collections::HashMap;

fn main() {
    type Case = (
        &'static str,
        &'static str,
        &'static str,
        Vec<(&'static str, (u64, u64))>,
    );
    let cases: Vec<Case> = vec![
        (
            "SumMatrixMult",
            "sum(A %*% B)",
            "sum(t(colSums(A)) * rowSums(B))",
            vec![("A", (8, 6)), ("B", (6, 8))],
        ),
        (
            "DotProductSum",
            "sum(v^2)",
            "t(v) %*% v",
            vec![("v", (8, 1))],
        ),
        (
            "pushdownUnaryAggTransposeOp",
            "colSums(t(X))",
            "t(rowSums(X))",
            vec![("X", (8, 6))],
        ),
        (
            "the §1 headline",
            "sum((X - u %*% t(v))^2)",
            "sum(X^2) - 2 * (t(u) %*% X %*% v) + (t(u) %*% u) * (t(v) %*% v)",
            vec![("X", (8, 6)), ("u", (8, 1)), ("v", (6, 1))],
        ),
    ];

    for (name, lhs, rhs, shapes) in cases {
        let mut arena = ExprArena::new();
        let l = spores::ir::parse_expr(&mut arena, lhs).unwrap();
        let r = spores::ir::parse_expr(&mut arena, rhs).unwrap();
        let vars: HashMap<Symbol, VarMeta> = shapes
            .iter()
            .map(|&(n, (rr, cc))| (Symbol::new(n), VarMeta::dense(rr, cc)))
            .collect();
        let cl = canon_of_la(&arena, l, &vars).unwrap();
        let cr = canon_of_la(&arena, r, &vars).unwrap();
        let equal = polyterm_isomorphic(&cl, &cr);
        println!("[{name}]");
        println!("  lhs  : {lhs}");
        println!("  rhs  : {rhs}");
        println!("  C(e) : {}", cl.render());
        println!("  equal: {equal}  (canonical forms isomorphic — Theorem 2.3)");
        println!();
        assert!(equal);
    }
}
