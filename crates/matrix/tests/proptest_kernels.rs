//! Property tests: every sparse kernel agrees with the dense oracle.

use proptest::prelude::*;
use spores_matrix::{Csr, Dense, Matrix};

fn dense_matrix(max: usize) -> impl Strategy<Value = Dense> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        prop::collection::vec(-5i8..=5, r * c)
            .prop_map(move |v| Dense::new(r, c, v.into_iter().map(f64::from).collect()))
    })
}

fn sparse_like(d: &Dense) -> Csr {
    Csr::from_dense(d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_roundtrip(d in dense_matrix(8)) {
        let s = sparse_like(&d);
        prop_assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn transpose_agrees(d in dense_matrix(8)) {
        let s = sparse_like(&d);
        prop_assert_eq!(s.transpose().to_dense(), d.transpose());
    }

    #[test]
    fn transpose_involution(d in dense_matrix(8)) {
        let s = sparse_like(&d);
        prop_assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn add_and_scale_agree(d in dense_matrix(6)) {
        let s = sparse_like(&d);
        let sum = s.add(&s).to_dense();
        prop_assert_eq!(sum, d.zip(&d, |a, b| a + b));
        let scaled = s.scale(-2.0).to_dense();
        prop_assert_eq!(scaled, d.map(|v| v * -2.0));
    }

    #[test]
    fn aggregates_agree(d in dense_matrix(8)) {
        let s = sparse_like(&d);
        prop_assert_eq!(s.row_sums().data, d.row_sums().data);
        prop_assert_eq!(s.col_sums().data, d.col_sums().data);
        prop_assert!((s.sum() - d.sum()).abs() < 1e-9);
    }

    #[test]
    fn spmm_agrees(a in dense_matrix(6), b in dense_matrix(6)) {
        // reshape b to be conformable
        let k = a.cols;
        let b = Dense::new(k, b.cols, (0..k * b.cols).map(|i| b.data[i % b.data.len()]).collect());
        let s = sparse_like(&a);
        let got = s.matmul_dense(&b);
        let want = a.matmul(&b);
        prop_assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    fn matrix_enum_ops_agree(a in dense_matrix(6), b in dense_matrix(6)) {
        // same-shape element-wise ops across all representation pairs
        let b = Dense::new(a.rows, a.cols,
            (0..a.rows * a.cols).map(|i| b.data[i % b.data.len()]).collect());
        let variants = |d: &Dense| vec![
            Matrix::Dense(d.clone()),
            Matrix::Sparse(Csr::from_dense(d)),
        ];
        let want_mul = a.zip(&b, |x, y| x * y);
        let want_add = a.zip(&b, |x, y| x + y);
        let want_sub = a.zip(&b, |x, y| x - y);
        for ma in variants(&a) {
            for mb in variants(&b) {
                prop_assert!(ma.mul(&mb).to_dense().approx_eq(&want_mul, 1e-9));
                prop_assert!(ma.add(&mb).to_dense().approx_eq(&want_add, 1e-9));
                prop_assert!(ma.sub(&mb).to_dense().approx_eq(&want_sub, 1e-9));
            }
        }
    }

    #[test]
    fn zero_preserving_map_agrees(d in dense_matrix(8)) {
        let m = Matrix::Sparse(sparse_like(&d));
        let got = m.map(true, |v| v * v).to_dense();
        prop_assert_eq!(got, d.map(|v| v * v));
    }
}
