//! Differential property test for the relational (generic-join)
//! e-matching backend.
//!
//! Three backends, two oracles. `naive_search` is the interpreted
//! ground truth for *what* a pattern matches; the structural
//! (compiled Bind/Compare) machine is the oracle for *order* and
//! *funnel accounting*. The relational generic-join path must agree
//! with both exactly — same matches, same substitutions, same order,
//! same visited-candidate counts — over random expressions, random
//! rule applications, random unions, and interleaved rebuilds
//! (mirroring `proptest_delta.rs`). The delta and frozen-region
//! candidate funnels are swept through both compiled backends too:
//! restricting the candidate list must commute with the backend
//! choice, bit for bit.

use proptest::prelude::*;
use spores_egraph::{
    EGraph, FxHashSet, Id, Language, MatchingMode, Pattern, Rewrite, SearchMatches, Subst, Var,
};
use std::collections::HashSet;

/// Tiny arithmetic language (mirrors `proptest_delta.rs`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Node {
    Add([Id; 2]),
    Neg(Id),
    Leaf(u8),
}

impl Language for Node {
    fn children(&self) -> &[Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_ref(c),
            Node::Leaf(_) => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_mut(c),
            Node::Leaf(_) => &mut [],
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (Node::Add(_), Node::Add(_)) => true,
            (Node::Neg(_), Node::Neg(_)) => true,
            (Node::Leaf(a), Node::Leaf(b)) => a == b,
            _ => false,
        }
    }

    fn op_display(&self) -> String {
        match self {
            Node::Add(_) => "+".into(),
            Node::Neg(_) => "neg".into(),
            Node::Leaf(v) => v.to_string(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        match (op, children.len()) {
            ("+", 2) => Ok(Node::Add([children[0], children[1]])),
            ("neg", 1) => Ok(Node::Neg(children[0])),
            (s, 0) => s.parse::<u8>().map(Node::Leaf).map_err(|e| e.to_string()),
            _ => Err("bad arity".into()),
        }
    }
}

/// Construction script: grow an expression bottom-up.
#[derive(Clone, Debug)]
enum Step {
    Leaf(u8),
    Add(usize, usize),
    Neg(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..5).prop_map(Step::Leaf),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
            any::<usize>().prop_map(Step::Neg),
        ],
        1..30,
    )
}

/// One mutation round between searches: a random subset of rules applied
/// to a random slice of their matches, plus random direct unions.
#[derive(Clone, Debug)]
struct Round {
    rule_mask: u8,
    apply_cap: usize,
    unions: Vec<(usize, usize)>,
}

fn rounds() -> impl Strategy<Value = Vec<Round>> {
    prop::collection::vec(
        (
            any::<u8>(),
            1usize..4,
            prop::collection::vec((any::<usize>(), any::<usize>()), 0..3),
        )
            .prop_map(|(rule_mask, apply_cap, unions)| Round {
                rule_mask,
                apply_cap,
                unions,
            }),
        1..6,
    )
}

fn rules() -> Vec<Rewrite<Node, ()>> {
    vec![
        Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
        Rewrite::new("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
        Rewrite::new("neg-neg", "(neg (neg ?a))", "?a").unwrap(),
        Rewrite::new("add-self-neg", "(+ ?a ?a)", "(neg (neg (+ ?a ?a)))").unwrap(),
    ]
}

/// Pattern pool: the delta-test pool plus deeper shapes that exercise
/// multi-atom join plans, repeated variables across atoms, and ground
/// subterms (where the relational guard columns do real filtering).
fn patterns() -> Vec<Pattern<Node>> {
    [
        "?a",
        "(+ ?a ?b)",
        "(+ ?a ?a)",
        "(neg ?a)",
        "(neg (neg ?a))",
        "(+ (neg ?a) ?b)",
        "(+ ?a (+ ?b ?c))",
        "(+ (+ ?a ?b) (+ ?c ?d))",
        "(+ (+ ?a ?b) (+ ?b ?a))",
        "(neg (+ ?a (neg ?a)))",
        "(+ 1 ?x)",
        "(+ (+ 0 ?a) ?b)",
        "2",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

/// Exact comparable form: per-class substitution lists, order preserved.
fn exact(matches: &[SearchMatches]) -> Vec<(Id, Vec<Subst>)> {
    matches
        .iter()
        .map(|m| (m.eclass, m.substs.clone()))
        .collect()
}

/// Order-free comparable form for the naive oracle.
type MatchSet = HashSet<(Id, Vec<(Var, Id)>)>;

fn match_set(matches: &[SearchMatches]) -> MatchSet {
    let mut out = MatchSet::default();
    for m in matches {
        for s in &m.substs {
            let mut subst: Vec<(Var, Id)> = s.iter().collect();
            subst.sort();
            out.insert((m.eclass, subst));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relational_search_is_bit_identical_to_structural_and_naive(
        script in steps(),
        rounds in rounds(),
    ) {
        let mut eg: EGraph<Node, ()> = EGraph::default();
        let mut ids: Vec<Id> = Vec::new();
        for step in &script {
            let id = match *step {
                Step::Leaf(v) => eg.add(Node::Leaf(v)),
                Step::Add(a, b) if !ids.is_empty() => {
                    eg.add(Node::Add([ids[a % ids.len()], ids[b % ids.len()]]))
                }
                Step::Neg(a) if !ids.is_empty() => eg.add(Node::Neg(ids[a % ids.len()])),
                _ => eg.add(Node::Leaf(0)),
            };
            ids.push(id);
        }
        eg.rebuild();
        eg.check_invariants();

        let patterns = patterns();
        let rules = rules();

        // Differential sweep over the initial graph and after every
        // mutation round. `compare` is hoisted so round 0 (no mutations
        // yet) goes through the identical checks.
        let compare = |eg: &EGraph<Node, ()>, dirty_sorted: &[Id]| -> Result<(), TestCaseError> {
            for p in &patterns {
                // Full sweep: relational vs structural must agree on
                // match stream *and* funnel accounting; naive pins down
                // the semantics as a set.
                let (structural, vis_s) = p.search_with_stats(eg);
                let (relational, vis_r) = p.search_relational_with_stats(eg);
                prop_assert_eq!(
                    vis_s, vis_r,
                    "{}: visited-candidate count diverged on full sweep", p
                );
                prop_assert_eq!(
                    exact(&structural), exact(&relational),
                    "{}: relational full sweep != structural", p
                );
                let naive = match_set(&p.naive_search(eg));
                prop_assert_eq!(
                    match_set(&structural), naive,
                    "{}: compiled backends != naive oracle", p
                );

                // Funnel composition: an explicit candidate list (the
                // delta funnel, and a frozen-region complement) must
                // commute with the backend choice.
                let delta_ids = p.delta_candidate_ids(eg, dirty_sorted);
                let frozen: FxHashSet<Id> =
                    dirty_sorted.iter().step_by(2).copied().collect();
                let except_ids = p.except_candidate_ids(eg, &frozen);
                for lane in [&delta_ids, &except_ids] {
                    let (sm, sv) =
                        p.search_ids_with_stats_mode(eg, lane, MatchingMode::Structural);
                    let (rm, rv) =
                        p.search_ids_with_stats_mode(eg, lane, MatchingMode::Relational);
                    prop_assert_eq!(
                        sv, rv,
                        "{}: visited count diverged on candidate lane", p
                    );
                    prop_assert_eq!(
                        exact(&sm), exact(&rm),
                        "{}: relational candidate lane != structural", p
                    );
                }
            }
            Ok(())
        };

        let all_sorted = |eg: &EGraph<Node, ()>| -> Vec<Id> {
            let mut v: Vec<Id> = eg.classes().map(|c| c.id).collect();
            v.sort_unstable();
            v
        };

        compare(&eg, &all_sorted(&eg))?;
        eg.take_dirty();

        for round in &rounds {
            // --- mutate: rule applications + random unions ----------
            let selected: Vec<(usize, Vec<SearchMatches>)> = rules
                .iter()
                .enumerate()
                .filter(|(ri, _)| round.rule_mask & (1 << ri) != 0)
                .map(|(ri, rule)| (ri, rule.search(&eg)))
                .collect();
            for (ri, matches) in selected {
                let rule = &rules[ri];
                let mut applied = 0;
                'outer: for m in &matches {
                    for s in &m.substs {
                        if applied >= round.apply_cap {
                            break 'outer;
                        }
                        rule.apply_match(&mut eg, m.eclass, s);
                        applied += 1;
                    }
                }
            }
            for &(a, b) in &round.unions {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                eg.union(a, b);
            }
            eg.rebuild();
            eg.check_invariants();

            let mut dirty_sorted: Vec<Id> =
                eg.dirty_classes().iter().copied().collect();
            dirty_sorted.sort_unstable();
            compare(&eg, &dirty_sorted)?;
            eg.take_dirty();
        }
    }
}
