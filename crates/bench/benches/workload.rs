//! Workload-mode benchmarks: ONE shared-e-graph saturation for a whole
//! workload vs. N independent per-statement saturations, on the §4.2
//! evaluation workloads.
//!
//! Modes:
//!
//! * plain `cargo bench --bench workload` — criterion wall-time benches
//!   (shared one-pass vs per-statement compile) per workload;
//! * `-- --smoke` — one pass per workload comparing wall time and
//!   `candidates_visited` (total rule-matching work), asserting the
//!   acceptance bars: the one-pass saturation does less total matching
//!   work than the per-statement sum on ≥ 4 of the 5 workloads
//!   (including GLM and PNMF specifically) AND its wall time is within
//!   1.1× of the per-statement sum on ≥ 4 of the 5; SVM is the
//!   documented holdout for both (see `smoke`); run by CI;
//! * `-- --snapshot` / `--snapshot-only` — additionally rewrite the
//!   committed `BENCH_workload.json`, including an ALS thread-scaling
//!   table (one-pass wall time at 1/2/4/8 search threads);
//! * `-- --threads N` — run any of the above with N search threads
//!   instead of the `SPORES_THREADS`/host default.

use criterion::{criterion_group, Criterion};
use spores_core::{Optimizer, SaturationStats, WorkloadOptimized};
use spores_egraph::ParallelConfig;
use spores_ml::workloads::{self, Workload};
use spores_ml::{workload_bundle, workload_optimizer_config, WorkloadBundle};
use std::hint::black_box;
use std::time::Instant;

/// Slack on the wall-time acceptance bar: one-pass must stay within
/// this factor of the per-statement sum (per winning workload).
const WALL_SLACK: f64 = 1.1;

/// The benchmark roster: all five §4.2 workloads at bench-scale sizes.
fn roster() -> Vec<Workload> {
    vec![
        workloads::als(200, 100, 8, 51),
        workloads::glm(200, 40, 52),
        workloads::svm(200, 40, 53),
        workloads::mlr(200, 20, 54),
        workloads::pnmf(150, 120, 8, 55),
    ]
}

fn optimizer(parallel: ParallelConfig) -> Optimizer {
    let mut cfg = workload_optimizer_config();
    cfg.parallel = parallel;
    Optimizer::new(cfg)
}

/// One shared-e-graph pass over the whole bundle.
fn run_shared(bundle: &WorkloadBundle, parallel: ParallelConfig) -> WorkloadOptimized {
    optimizer(parallel)
        .optimize_workload(&bundle.expr, &bundle.vars)
        .expect("workload optimizes")
}

/// N independent per-statement passes; returns the summed stats.
fn run_per_statement(bundle: &WorkloadBundle, parallel: ParallelConfig) -> SaturationStats {
    let mut total = SaturationStats {
        iterations: 0,
        e_nodes: 0,
        e_classes: 0,
        converged: true,
        stop_reason: None,
        candidates_visited: 0,
        matches_found: 0,
        region_frozen_iters: 0,
    };
    for ix in 0..bundle.expr.len() {
        let single = bundle.expr.single_statement(ix);
        let got = optimizer(parallel)
            .optimize_workload(&single, &bundle.vars)
            .expect("statement optimizes");
        total.iterations += got.saturation.iterations;
        total.e_nodes += got.saturation.e_nodes;
        total.e_classes += got.saturation.e_classes;
        total.converged &= got.saturation.converged;
        total.candidates_visited += got.saturation.candidates_visited;
        total.matches_found += got.saturation.matches_found;
    }
    total
}

fn bench_shared_vs_per_statement(c: &mut Criterion) {
    let parallel = ParallelConfig::default();
    for w in roster() {
        let bundle = workload_bundle(&w);
        let mut group = c.benchmark_group(&format!("workload/{}", w.name.to_lowercase()));
        group.sample_size(10);
        group.bench_function("one_pass", |b| {
            b.iter(|| black_box(run_shared(&bundle, parallel)))
        });
        group.bench_function("per_statement", |b| {
            b.iter(|| black_box(run_per_statement(&bundle, parallel)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_shared_vs_per_statement);

struct SmokeRow {
    name: &'static str,
    statements: usize,
    shared_ns: u64,
    per_statement_ns: u64,
    shared_candidates: usize,
    per_statement_candidates: usize,
    shared_cost: f64,
}

/// Best-of-two wall time for `f` (damps one-off scheduler noise; the
/// saturations themselves are deterministic, so only the clock varies).
fn min_of_two<T>(mut f: impl FnMut() -> T) -> (u64, T) {
    let t0 = Instant::now();
    let out = f();
    let first = t0.elapsed().as_nanos() as u64;
    let t0 = Instant::now();
    black_box(f());
    let second = t0.elapsed().as_nanos() as u64;
    (first.min(second), out)
}

fn smoke_rows(parallel: ParallelConfig) -> Vec<SmokeRow> {
    roster()
        .into_iter()
        .map(|w| {
            let bundle = workload_bundle(&w);
            let (shared_ns, shared) = min_of_two(|| run_shared(&bundle, parallel));
            let (per_statement_ns, per) = min_of_two(|| run_per_statement(&bundle, parallel));
            assert!(!shared.fell_back, "{}: workload mode fell back", w.name);
            SmokeRow {
                name: w.name,
                statements: bundle.expr.len(),
                shared_ns,
                per_statement_ns,
                shared_candidates: shared.saturation.candidates_visited,
                per_statement_candidates: per.candidates_visited,
                shared_cost: shared.cost_after,
            }
        })
        .collect()
}

fn smoke(parallel: ParallelConfig) {
    let rows = smoke_rows(parallel);
    let mut fewer_candidates = 0usize;
    let mut wall_ok = 0usize;
    let mut winners = Vec::new();
    for row in &rows {
        let wins = row.shared_candidates < row.per_statement_candidates;
        let wall_wins = (row.shared_ns as f64) <= (row.per_statement_ns as f64) * WALL_SLACK;
        fewer_candidates += usize::from(wins);
        wall_ok += usize::from(wall_wins);
        if wins {
            winners.push(row.name);
        }
        println!(
            "workload smoke {:>5}: {} statements  one-pass {:>11} ns / {:>7} candidates  per-statement {:>11} ns / {:>7} candidates  {}{}",
            row.name,
            row.statements,
            row.shared_ns,
            row.shared_candidates,
            row.per_statement_ns,
            row.per_statement_candidates,
            if wins { "one-pass does less matching" } else { "-" },
            if wall_wins { "" } else { "  [wall-time holdout]" },
        );
    }
    // Acceptance (dirty-class delta search + per-region convergence
    // freezing): one-pass must beat the per-statement candidate sum on
    // ≥ 4 of 5 workloads, and specifically on GLM and PNMF — the two
    // the PR-3 shared-cap workload mode lost.
    //
    // Documented holdout — SVM, which this PR flips from a narrow win
    // (4,437 vs 5,008 under the PR-3 pooled cap) to a narrow loss
    // (~5.6k vs ~4.8k). The cause is the per-region budget itself: the
    // pooled cap spread 40×N applications across whatever was hot,
    // starving SVM's five nearly-disjoint statements just enough that
    // the union run stalled (and stopped) early; per-region budgets
    // give every live statement the per-statement application rate, so
    // the union run now explores as deeply as the five solo runs
    // combined — but SVM is the smallest §4.2 workload, its
    // per-statement runs converge within a handful of iterations each,
    // and its statements share little beyond input leaves, so there is
    // almost no converged-region waste for freezing to reclaim against
    // the union-sweep overhead of the hot phase. The trade buys the
    // ALS/GLM/MLR flips (tens of thousands of candidate visits each)
    // at the cost of a few hundred visits here.
    assert!(
        fewer_candidates >= 4,
        "acceptance: one-pass saturation must do less total rule-matching work \
         (candidates_visited) than the per-statement sum on ≥ 4 of the 5 §4.2 \
         workloads, got {fewer_candidates}"
    );
    for required in ["GLM", "PNMF"] {
        assert!(
            winners.contains(&required),
            "acceptance: {required} (a PR-3 workload-mode regression) must be a \
             one-pass win, winners: {winners:?}"
        );
    }
    // Wall-time acceptance: less matching work must show up on the
    // clock too. One-pass must land within 1.1× of the per-statement
    // sum on ≥ 4 of 5 workloads (best-of-two runs each, damping
    // scheduler noise). SVM is again the expected holdout: it does
    // ~17% more matching work one-pass (see above), so its wall time
    // trails by the same margin.
    assert!(
        wall_ok >= 4,
        "acceptance: one-pass wall time must be within {WALL_SLACK}x of the \
         per-statement sum on ≥ 4 of the 5 §4.2 workloads, got {wall_ok}"
    );
    println!(
        "workload smoke OK: one-pass matching work wins on {fewer_candidates}/5, wall time within {WALL_SLACK}x on {wall_ok}/5 (bar: 4 each, candidates incl. GLM+PNMF) at {} search threads",
        parallel.threads
    );
}

/// ALS one-pass wall time at 1/2/4/8 search threads (best of two runs
/// each), mirroring `BENCH_service.json`'s `warm_scaling` table.
fn thread_scaling() -> Vec<(usize, u64)> {
    let bundle = workload_bundle(&workloads::als(200, 100, 8, 51));
    [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let parallel = ParallelConfig {
                threads,
                ..ParallelConfig::serial()
            };
            let (ns, _) = min_of_two(|| run_shared(&bundle, parallel));
            (threads, ns)
        })
        .collect()
}

/// Write the `BENCH_workload.json` snapshot to the repo root.
fn emit_snapshot(parallel: ParallelConfig) {
    let rows = smoke_rows(parallel);
    let mut entries = Vec::new();
    for row in &rows {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"statements\": {},\n",
                "      \"one_pass_ns\": {},\n",
                "      \"per_statement_ns\": {},\n",
                "      \"one_pass_candidates\": {},\n",
                "      \"per_statement_candidates\": {},\n",
                "      \"one_pass_dag_cost\": {:.0}\n",
                "    }}"
            ),
            row.name,
            row.statements,
            row.shared_ns,
            row.per_statement_ns,
            row.shared_candidates,
            row.per_statement_candidates,
            row.shared_cost,
        ));
    }
    let scaling: Vec<String> = thread_scaling()
        .iter()
        .map(|&(threads, ns)| format!("    {{ \"threads\": {threads}, \"one_pass_ns\": {ns} }}"))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"workload/one_pass_vs_per_statement\",\n",
            "  \"parallel\": {{ \"threads\": {}, \"min_shard_size\": {} }},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"als_thread_scaling\": [\n{}\n  ]\n",
            "}}\n"
        ),
        parallel.threads,
        parallel.min_shard_size,
        entries.join(",\n"),
        scaling.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workload.json");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let mut parallel = ParallelConfig::default();
    if let Some(ix) = args.iter().position(|a| a == "--threads") {
        parallel.threads = args
            .get(ix + 1)
            .and_then(|s| s.parse().ok())
            .expect("--threads takes a positive integer")
    }
    if has("--smoke") {
        smoke(parallel);
        return;
    }
    if has("--snapshot") || has("--snapshot-only") {
        emit_snapshot(parallel);
    }
    if has("--snapshot-only") {
        return;
    }
    benches();
}
