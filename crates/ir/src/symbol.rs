//! Globally interned strings.
//!
//! Matrix names (`X`, `U`), relational attribute/index names (`i0`, `j3`)
//! and uninterpreted-function names all flow through the e-graph, pattern
//! matcher and cost model, where they are compared and hashed constantly.
//! Interning makes those operations integer comparisons.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Two [`Symbol`]s are equal iff their spellings are.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Intern `name`, returning its unique symbol.
    pub fn new(name: &str) -> Symbol {
        {
            let int = interner().read().unwrap();
            if let Some(&id) = int.table.get(name) {
                return Symbol(id);
            }
        }
        let mut int = interner().write().unwrap();
        if let Some(&id) = int.table.get(name) {
            return Symbol(id);
        }
        let id = int.names.len() as u32;
        // Interned strings live for the program's lifetime; leaking gives
        // `&'static str` access without per-lookup allocation.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        int.names.push(leaked);
        int.table.insert(leaked, id);
        Symbol(id)
    }

    /// The spelling this symbol was interned with.
    pub fn as_str(self) -> &'static str {
        interner().read().unwrap().names[self.0 as usize]
    }

    /// A stable integer id (useful as a dense map key).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("X");
        let b = Symbol::new("X");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "X");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("foo_sym"), Symbol::new("bar_sym"));
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::new("rowSums");
        assert_eq!(s.to_string(), "rowSums");
        assert_eq!(format!("{s:?}"), "rowSums");
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| Symbol::new(&format!("concurrent_{}", (t + i) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same spelling must yield the same symbol across threads.
        for row in &all {
            for s in row {
                assert_eq!(*s, Symbol::new(s.as_str()));
            }
        }
    }
}
