//! The warm-path scaling contract, telemetry-verified:
//!
//! * warm hits complete on the caller's thread without ever entering the
//!   worker queue — a 100%-hit run records **zero** `service.queue_wait`
//!   spans;
//! * coalescing returns identical plans under thread contention;
//! * backpressure rejections are typed, bounded, and recoverable.
//!
//! The global telemetry journal is process-wide, so every test here
//! serializes on [`JOURNAL_LOCK`]; the multi-thread stress body is
//! skipped (with a logged reason) on single-core hosts, where thread
//! fan-out measures overhead, not contention.

use spores::core::{OptimizerConfig, VarMeta};
use spores::ir::{parse_expr, ExprArena, Symbol};
use spores::service::{
    OptimizerService, PlanSource, Request, ServiceConfig, ServiceError, TryOptimize,
};
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};

/// Tests here enable/drain the process-global telemetry journal; run one
/// at a time so they never observe each other's spans.
static JOURNAL_LOCK: Mutex<()> = Mutex::new(());

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn vars(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, VarMeta> {
    list.iter()
        .map(|&(n, (r, c), s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
        .collect()
}

fn request(src: &str, vs: &HashMap<Symbol, VarMeta>) -> Request {
    let mut arena = ExprArena::new();
    let root = parse_expr(&mut arena, src).unwrap();
    Request::new(arena, root, vs.clone())
}

/// A small roster of distinct warm shapes (all §4.2-style statements).
fn warm_roster(size: u64) -> Vec<Request> {
    let (m, n) = (200 + size * 10, 100 + size * 5);
    vec![
        request(
            "sum((X - u %*% t(v))^2)",
            &vars(&[("X", (m, n), 0.001), ("u", (m, 1), 1.0), ("v", (n, 1), 1.0)]),
        ),
        request(
            "(U %*% t(V) - X) %*% V",
            &vars(&[("X", (m, n), 0.001), ("U", (m, 8), 1.0), ("V", (n, 8), 1.0)]),
        ),
        request(
            "sum(W %*% H)",
            &vars(&[("W", (m, 8), 1.0), ("H", (8, n), 1.0)]),
        ),
    ]
}

/// Structurally distinct statements (one more summand per `i`), so each
/// has its *own* canonical fingerprint — resized requests alone would
/// all coalesce onto one flight, since the cache is shape-polymorphic.
fn distinct_request(i: usize) -> Request {
    let terms = vec!["(X - u %*% t(v))^2"; i + 1].join(" + ");
    request(
        &format!("sum({terms})"),
        &vars(&[
            ("X", (300, 150), 0.001),
            ("u", (300, 1), 1.0),
            ("v", (150, 1), 1.0),
        ]),
    )
}

fn service(workers: usize, queue_capacity: usize) -> OptimizerService {
    OptimizerService::new(ServiceConfig {
        optimizer: OptimizerConfig {
            node_limit: 4_000,
            iter_limit: 8,
            ..OptimizerConfig::default()
        },
        workers,
        queue_capacity,
        ..ServiceConfig::default()
    })
}

/// Drain the journal and count events named `name` (begin+end pairs
/// count once).
fn drained_span_count(name: &str) -> usize {
    spores::telemetry::drain()
        .iter()
        .filter(|e| e.name == name && e.kind == spores::telemetry::EventKind::Begin)
        .count()
}

#[test]
fn warm_hits_record_zero_queue_wait_spans() {
    let _serial = JOURNAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let svc = service(2, 64);
    let roster = warm_roster(0);
    for r in &roster {
        assert_eq!(
            svc.optimize(r.clone()).expect("warmup").source,
            PlanSource::Miss
        );
    }

    spores::telemetry::reset();
    spores::telemetry::set_enabled(true);
    for _ in 0..10 {
        for r in &roster {
            let served = svc.optimize(r.clone()).expect("warm request");
            assert_eq!(served.source, PlanSource::Hit);
        }
    }
    spores::telemetry::set_enabled(false);

    let events = spores::telemetry::drain();
    let queue_waits = events
        .iter()
        .filter(|e| e.name == "service.queue_wait")
        .count();
    let probes = events
        .iter()
        .filter(|e| e.name == "service.cache_probe")
        .count();
    assert_eq!(
        queue_waits, 0,
        "a 100%-hit run must never enter the worker queue"
    );
    assert!(probes > 0, "hits must come from instrumented cache probes");
    assert_eq!(svc.stats().hits, 10 * roster.len() as u64);
}

#[test]
fn backpressure_rejections_are_typed_bounded_and_recoverable() {
    let _serial = JOURNAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // one worker, one queue slot: a burst of distinct cold shapes must
    // overflow into typed rejections almost immediately
    let svc = service(1, 1);
    let mut tickets = Vec::new();
    let mut rejected: Option<(Request, ServiceError)> = None;
    const BURST: usize = 16;
    for i in 0..BURST {
        let req = distinct_request(i);
        match svc.try_optimize(req.clone()) {
            Ok(TryOptimize::Pending(t)) => tickets.push(t),
            Ok(TryOptimize::Ready(_)) => panic!("cold shape {i} cannot hit"),
            Err(e) => {
                rejected = Some((req, e));
                break;
            }
        }
    }
    let (req, err) = rejected.expect("a 1-deep queue must reject within the burst");
    let ServiceError::Overloaded {
        queue_depth,
        capacity,
        retry_after,
    } = &err
    else {
        panic!("expected Overloaded, got {err:?}");
    };
    assert_eq!(*capacity, 1);
    assert!(*queue_depth <= *capacity, "{err:?}");
    assert!(!retry_after.is_zero(), "{err:?}");
    assert!(svc.stats().rejections >= 1);

    // rejections are bounded: at most (workers + capacity) flights were
    // admitted before the first rejection
    assert!(
        tickets.len() <= 2,
        "1 worker + 1 slot admitted {} flights",
        tickets.len()
    );

    // recovery 1: the rejected request retried through the non-blocking
    // door eventually lands (the queue drains at pipeline speed)
    let mut retried = None;
    for _ in 0..1000 {
        match svc.try_optimize(req.clone()) {
            Ok(TryOptimize::Pending(t)) => {
                retried = Some(t.wait().expect("retried flight"));
                break;
            }
            Ok(TryOptimize::Ready(served)) => {
                retried = Some(served);
                break;
            }
            Err(ServiceError::Overloaded { retry_after, .. }) => {
                std::thread::sleep(retry_after);
            }
            Err(e) => panic!("retry failed: {e:?}"),
        }
    }
    let retried = retried.expect("bounded retries must eventually succeed");
    assert!(matches!(
        retried.source,
        PlanSource::Miss | PlanSource::Coalesced | PlanSource::Hit
    ));

    // recovery 2: every admitted ticket completes; poll() on the first
    // one transitions Pending → Some exactly once
    let mut first = tickets.remove(0);
    let polled = loop {
        if let Some(result) = first.poll() {
            break result.expect("polled flight");
        }
        std::thread::yield_now();
    };
    assert_eq!(polled.source, PlanSource::Miss);
    assert!(first.poll().is_none(), "poll completes exactly once");
    for t in tickets {
        t.wait().expect("admitted flight completes");
    }

    // the blocking door absorbs overload instead of rejecting
    let blocking = svc
        .optimize(distinct_request(BURST + 1))
        .expect("blocking optimize never rejects");
    assert_eq!(blocking.source, PlanSource::Miss);
}

#[test]
fn warm_stress_hits_stay_synchronous_and_coalescing_stays_identical() {
    let _serial = JOURNAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let cores = host_cores();
    if cores == 1 {
        println!(
            "SKIP warm_stress_hits_stay_synchronous_and_coalescing_stays_identical: \
             host has 1 core — thread fan-out would measure overhead, not contention"
        );
        return;
    }

    for threads in [8usize, 16] {
        // --- part 1: pure-hit stress records zero queue_wait spans ----
        let svc = Arc::new(service(4, 64));
        let roster = warm_roster(1);
        for r in &roster {
            svc.optimize(r.clone()).expect("warmup");
        }
        spores::telemetry::reset();
        spores::telemetry::set_enabled(true);
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let svc = svc.clone();
                let roster = roster.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..25 {
                        let r = &roster[(t + i) % roster.len()];
                        let served = svc.optimize(r.clone()).expect("warm request");
                        assert_eq!(served.source, PlanSource::Hit);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress thread");
        }
        spores::telemetry::set_enabled(false);
        assert_eq!(
            drained_span_count("service.queue_wait"),
            0,
            "{threads}-thread 100%-hit stress must never queue"
        );

        // --- part 2: coalescing under contention returns identical plans
        let svc = Arc::new(service(2, 64));
        let cold = warm_roster(7).remove(0);
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let svc = svc.clone();
                let cold = cold.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let served = svc.optimize(cold).expect("contended request");
                    served.arena.display(served.root)
                })
            })
            .collect();
        let plans: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().expect("coalescing thread"))
            .collect();
        for p in &plans[1..] {
            assert_eq!(p, &plans[0], "coalesced waiters must see one plan");
        }
        let stats = svc.stats();
        assert_eq!(stats.requests(), threads as u64);
        assert!(
            stats.misses >= 1 && stats.misses + stats.coalesced + stats.hits == threads as u64,
            "{stats:?}"
        );
    }
}
