//! Problem representation: boolean variables, CNF clauses, linear
//! objective.

/// A literal: variable index plus sign (`true` = positive occurrence).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Lit {
    pub var: u32,
    pub positive: bool,
}

impl Lit {
    pub fn pos(var: u32) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    pub fn neg(var: u32) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// Is this literal satisfied by `value` of its variable?
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

/// A disjunction of literals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Clause {
    pub lits: Vec<Lit>,
}

/// A 0-1 minimization problem: CNF constraints + non-negative linear
/// objective.
#[derive(Clone, Debug, Default)]
pub struct Problem {
    n_vars: u32,
    pub clauses: Vec<Clause>,
    /// objective coefficient per variable (0 when absent)
    pub objective: Vec<f64>,
}

impl Problem {
    pub fn new() -> Problem {
        Problem::default()
    }

    /// Allocate a fresh boolean variable with the given objective weight.
    /// Weights must be non-negative (required by the bounding scheme).
    pub fn add_var(&mut self, cost: f64) -> u32 {
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "objective weights must be non-negative and finite, got {cost}"
        );
        let v = self.n_vars;
        self.n_vars += 1;
        self.objective.push(cost);
        v
    }

    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        debug_assert!(lits.iter().all(|l| l.var < self.n_vars));
        self.clauses.push(Clause { lits });
    }

    /// Constraint: `v` must be true.
    pub fn require(&mut self, v: u32) {
        self.add_clause(vec![Lit::pos(v)]);
    }

    /// Constraint: `v → w` (if `v` is selected, so is `w`).
    pub fn imply(&mut self, v: u32, w: u32) {
        self.add_clause(vec![Lit::neg(v), Lit::pos(w)]);
    }

    /// Constraint: `v → w1 ∨ … ∨ wk`.
    pub fn imply_any(&mut self, v: u32, ws: &[u32]) {
        let mut lits = vec![Lit::neg(v)];
        lits.extend(ws.iter().map(|&w| Lit::pos(w)));
        self.add_clause(lits);
    }

    /// Constraint: not all of `vs` may be true simultaneously
    /// (used as a lazy blocking clause for cycle elimination).
    pub fn forbid_all(&mut self, vs: &[u32]) {
        assert!(!vs.is_empty(), "cannot forbid the empty conjunction");
        self.add_clause(vs.iter().map(|&v| Lit::neg(v)).collect());
    }

    /// Does `assignment` satisfy every clause?
    pub fn check(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars as usize);
        self.clauses.iter().all(|c| {
            c.lits
                .iter()
                .any(|l| l.satisfied_by(assignment[l.var as usize]))
        })
    }

    /// Objective value of `assignment`.
    pub fn cost(&self, assignment: &[bool]) -> f64 {
        assignment
            .iter()
            .zip(&self.objective)
            .filter(|(&a, _)| a)
            .map(|(_, &c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_check() {
        let mut p = Problem::new();
        let a = p.add_var(1.0);
        let b = p.add_var(2.0);
        let c = p.add_var(4.0);
        p.require(a);
        p.imply(a, b);
        p.imply_any(b, &[a, c]);
        assert!(p.check(&[true, true, false]));
        assert!(!p.check(&[true, false, false]));
        assert_eq!(p.cost(&[true, true, false]), 3.0);
        assert_eq!(p.cost(&[true, true, true]), 7.0);
    }

    #[test]
    fn forbid_all_blocks_conjunction() {
        let mut p = Problem::new();
        let a = p.add_var(0.0);
        let b = p.add_var(0.0);
        p.forbid_all(&[a, b]);
        assert!(p.check(&[true, false]));
        assert!(p.check(&[false, true]));
        assert!(!p.check(&[true, true]));
    }

    #[test]
    #[should_panic]
    fn negative_cost_rejected() {
        let mut p = Problem::new();
        p.add_var(-1.0);
    }
}
