//! Matrix shapes and SystemML-style shape inference.
//!
//! The paper's Table 1 types LA operators over `M_{M,N}` matrices; scalars
//! are `1×1` matrices and vectors are `M×1` / `1×N`. Element-wise binary
//! operators additionally broadcast scalars, column vectors and row vectors
//! the way SystemML (and R) do, which the ML workloads rely on.

use crate::arena::{BinOp, ExprArena, LaNode, NodeId, UnOp};
use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// The shape of a matrix value. Scalars are `1×1`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Shape {
    pub rows: u64,
    pub cols: u64,
}

impl Shape {
    pub fn new(rows: u64, cols: u64) -> Shape {
        Shape { rows, cols }
    }

    pub fn scalar() -> Shape {
        Shape { rows: 1, cols: 1 }
    }

    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    pub fn is_col_vector(&self) -> bool {
        self.cols == 1 && self.rows > 1
    }

    pub fn is_row_vector(&self) -> bool {
        self.rows == 1 && self.cols > 1
    }

    /// Total number of cells.
    pub fn nelem(&self) -> u64 {
        self.rows * self.cols
    }

    pub fn transposed(&self) -> Shape {
        Shape {
            rows: self.cols,
            cols: self.rows,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Shapes of the free matrix variables of an expression.
pub type ShapeEnv = HashMap<Symbol, Shape>;

/// A shape-inference failure, pointing at the offending node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeError {
    pub node: NodeId,
    pub message: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error at node {:?}: {}", self.node, self.message)
    }
}

impl std::error::Error for ShapeError {}

/// Shape of an element-wise binary op with broadcasting, or `None` if the
/// shapes are incompatible.
pub fn broadcast(a: Shape, b: Shape) -> Option<Shape> {
    if a == b {
        return Some(a);
    }
    if a.is_scalar() {
        return Some(b);
    }
    if b.is_scalar() {
        return Some(a);
    }
    // column vector broadcast across columns
    if a.cols == 1 && a.rows == b.rows {
        return Some(b);
    }
    if b.cols == 1 && b.rows == a.rows {
        return Some(a);
    }
    // row vector broadcast across rows
    if a.rows == 1 && a.cols == b.cols {
        return Some(b);
    }
    if b.rows == 1 && b.cols == a.cols {
        return Some(a);
    }
    None
}

impl ExprArena {
    /// Infer the shape of every node reachable from `root`.
    ///
    /// Returns a dense table indexed by [`NodeId`]; nodes not reachable from
    /// `root` may be `None`.
    pub fn infer_shapes(
        &self,
        root: NodeId,
        env: &ShapeEnv,
    ) -> Result<Vec<Option<Shape>>, ShapeError> {
        let mut shapes: Vec<Option<Shape>> = vec![None; self.len()];
        for id in self.postorder(root) {
            let shape = match self.node(id) {
                LaNode::Var(v) => *env.get(v).ok_or_else(|| ShapeError {
                    node: id,
                    message: format!("unbound variable {v}"),
                })?,
                LaNode::Scalar(_) => Shape::scalar(),
                LaNode::Fill(_, r, c) => Shape::new(*r, *c),
                LaNode::Un(op, a) => {
                    let sa = shapes[a.index()].expect("postorder");
                    match op {
                        UnOp::T => sa.transposed(),
                        UnOp::RowSums => Shape::new(sa.rows, 1),
                        UnOp::ColSums => Shape::new(1, sa.cols),
                        UnOp::Sum => Shape::scalar(),
                        _ => sa, // element-wise maps
                    }
                }
                LaNode::Bin(op, a, b) => {
                    let sa = shapes[a.index()].expect("postorder");
                    let sb = shapes[b.index()].expect("postorder");
                    match op {
                        BinOp::MatMul => {
                            if sa.cols != sb.rows {
                                return Err(ShapeError {
                                    node: id,
                                    message: format!("matmul mismatch {sa} %*% {sb}"),
                                });
                            }
                            Shape::new(sa.rows, sb.cols)
                        }
                        _ => broadcast(sa, sb).ok_or_else(|| ShapeError {
                            node: id,
                            message: format!("cannot broadcast {sa} {op} {sb}"),
                        })?,
                    }
                }
            };
            shapes[id.index()] = Some(shape);
        }
        Ok(shapes)
    }

    /// Shape of `root` alone (convenience wrapper).
    pub fn shape_of(&self, root: NodeId, env: &ShapeEnv) -> Result<Shape, ShapeError> {
        Ok(self.infer_shapes(root, env)?[root.index()].expect("root inferred"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn env(pairs: &[(&str, (u64, u64))]) -> ShapeEnv {
        pairs
            .iter()
            .map(|(n, (r, c))| (Symbol::new(n), Shape::new(*r, *c)))
            .collect()
    }

    #[test]
    fn broadcast_rules() {
        let s = Shape::scalar;
        assert_eq!(broadcast(s(), Shape::new(3, 4)), Some(Shape::new(3, 4)));
        assert_eq!(
            broadcast(Shape::new(3, 1), Shape::new(3, 4)),
            Some(Shape::new(3, 4))
        );
        assert_eq!(
            broadcast(Shape::new(3, 4), Shape::new(1, 4)),
            Some(Shape::new(3, 4))
        );
        assert_eq!(broadcast(Shape::new(3, 4), Shape::new(4, 3)), None);
        assert_eq!(broadcast(Shape::new(2, 1), Shape::new(3, 4)), None);
    }

    #[test]
    fn matmul_shapes() {
        let mut a = ExprArena::default();
        let root = parse_expr(&mut a, "X %*% Y").unwrap();
        let e = env(&[("X", (3, 5)), ("Y", (5, 7))]);
        assert_eq!(a.shape_of(root, &e).unwrap(), Shape::new(3, 7));

        let bad = env(&[("X", (3, 5)), ("Y", (4, 7))]);
        assert!(a.shape_of(root, &bad).is_err());
    }

    #[test]
    fn aggregates_and_transpose() {
        let mut a = ExprArena::default();
        let e = env(&[("X", (3, 5))]);
        for (src, want) in [
            ("t(X)", Shape::new(5, 3)),
            ("rowSums(X)", Shape::new(3, 1)),
            ("colSums(X)", Shape::new(1, 5)),
            ("sum(X)", Shape::scalar()),
        ] {
            let root = parse_expr(&mut a, src).unwrap();
            assert_eq!(a.shape_of(root, &e).unwrap(), want, "{src}");
        }
    }

    #[test]
    fn headline_expression_shape() {
        let mut a = ExprArena::default();
        let root = parse_expr(&mut a, "sum((X - U %*% t(V))^2)").unwrap();
        let e = env(&[("X", (100, 50)), ("U", (100, 1)), ("V", (50, 1))]);
        assert_eq!(a.shape_of(root, &e).unwrap(), Shape::scalar());
    }

    #[test]
    fn unbound_variable_errors() {
        let mut a = ExprArena::default();
        let root = parse_expr(&mut a, "Q + 1").unwrap();
        assert!(a.shape_of(root, &ShapeEnv::new()).is_err());
    }
}
