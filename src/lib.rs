//! SPORES — Sum-Product Optimization via Relational Equality Saturation.
//!
//! Facade crate re-exporting the whole reproduction of the VLDB 2020 paper
//! by Wang et al. See the individual crates for details:
//!
//! * [`ir`] — linear-algebra surface AST, shapes, parsers.
//! * [`egraph`] — the equality-saturation engine (e-graph, rewrites,
//!   schedulers, extraction).
//! * [`ilp`] — the 0-1 ILP solver used for optimal extraction (Figure 11).
//! * [`core`] — the optimizer itself: LA↔RA translation (Figure 2), the
//!   relational equality rules (Figure 3), class invariants (§3.2),
//!   canonical forms (§2.3), cost model (Figure 12) and extraction.
//! * [`matrix`] — dense/CSR kernels and synthetic data generators.
//! * [`exec`] — the LA plan interpreter with FLOP accounting and the fused
//!   operators SPORES targets (`mmchain`, `sprop`, `wsloss`).
//! * [`systemml`] — the heuristic, hand-coded-rule baseline optimizer the
//!   paper compares against (Figure 14 rule families).
//! * [`ml`] — the five evaluation workloads: ALS, GLM, SVM, MLR, PNMF.
//! * [`service`] — the concurrent optimizer front-end: worker pool,
//!   single-flight coalescing, and the shape-polymorphic plan cache.
//! * [`telemetry`] — the unified tracing + metrics facade: structured
//!   spans over the whole hot path, Chrome-trace export, and the
//!   Prometheus-style text exposition behind
//!   `OptimizerService::metrics_text`.

#![forbid(unsafe_code)]

pub use spores_core as core;
pub use spores_egraph as egraph;
pub use spores_exec as exec;
pub use spores_ilp as ilp;
pub use spores_ir as ir;
pub use spores_matrix as matrix;
pub use spores_ml as ml;
pub use spores_service as service;
pub use spores_systemml as systemml;
pub use spores_telemetry as telemetry;
