//! Workload-level cross-statement CSE, differentially tested (tier-1).
//!
//! For every §4.2 workload, the shared multi-root plan produced by
//! workload mode (all statements saturated in ONE e-graph, one
//! multi-root extraction) must have DAG cost ≤ the sum of the
//! per-statement optimized costs — and for PNMF strictly less: its
//! statements all need the `W %*% H` product, which per-statement
//! optimization pays once per statement while the shared plan binds it
//! once (the sharing is asserted structurally: the product appears as
//! exactly one node, reachable from several statement roots).

use spores::core::{ExtractorKind, Optimizer, OptimizerConfig, VarMeta, WorkloadOptimized};
use spores::ir::{ExprArena, NodeId, Symbol, WorkloadExpr};
use spores::ml::{workload_bundle, workloads};
use std::collections::HashMap;

fn optimizer() -> Optimizer {
    Optimizer::new(OptimizerConfig {
        extractor: ExtractorKind::Greedy,
        node_limit: 8_000,
        iter_limit: 20,
        ..OptimizerConfig::default()
    })
}

/// Optimize one root of `bundle` in isolation (the per-statement
/// pipeline, priced with the same DAG-cost metric as workload mode).
fn optimize_single(
    bundle: &WorkloadExpr,
    ix: usize,
    vars: &HashMap<Symbol, VarMeta>,
) -> WorkloadOptimized {
    let single = bundle.single_statement(ix);
    optimizer().optimize_workload(&single, vars).unwrap()
}

/// Workload-mode cost vs. the per-statement sum for one SSA bundle.
fn costs(bundle: &WorkloadExpr, vars: &HashMap<Symbol, VarMeta>) -> (WorkloadOptimized, f64) {
    let whole = optimizer().optimize_workload(bundle, vars).unwrap();
    assert!(!whole.fell_back, "workload mode fell back");
    let mut per_statement = 0.0;
    for ix in 0..bundle.roots.len() {
        let got = optimize_single(bundle, ix, vars);
        assert!(!got.fell_back, "statement {ix} fell back");
        per_statement += got.cost_after;
    }
    (whole, per_statement)
}

#[test]
fn workload_cost_never_exceeds_per_statement_sum_on_the_evaluation_suite() {
    for w in [
        workloads::als(60, 40, 4, 11),
        workloads::glm(60, 10, 12),
        workloads::svm(60, 10, 13),
        workloads::mlr(60, 8, 14),
        workloads::pnmf(50, 40, 4, 15),
    ] {
        let bundle = workload_bundle(&w);
        let (whole, per_statement) = costs(&bundle.expr, &bundle.vars);
        // At full saturation with optimal extraction the bound is exact
        // (the union of the per-statement selections is feasible for the
        // multi-root problem at ≤ the summed cost). Under the sampling
        // scheduler and greedy's tree-cost choices, trajectories differ
        // slightly between the union run and the solo runs, so a small
        // relative slack absorbs that noise; genuine double-paying of a
        // shared subplan would show up at the scale of the plan itself.
        assert!(
            whole.cost_after <= per_statement * 1.01 + 1e-6,
            "{}: workload cost {} > per-statement sum {per_statement}",
            w.name,
            whole.cost_after
        );
    }
}

/// The §4.2 PNMF statements read against one environment: all three
/// mention `W %*% H` (the obj statement twice), which is the paper's
/// motivating cross-statement sharing example — SystemML's CSE guard
/// blocks its own `sum(WH)` rewrite exactly because of it.
fn pnmf_shared_bundle() -> (WorkloadExpr, HashMap<Symbol, VarMeta>) {
    let w = workloads::pnmf(60, 50, 4, 33);
    let mut arena = ExprArena::new();
    let roots = w
        .statements
        .iter()
        .map(|st| {
            // fresh result names; every statement reads the initial W/H/X
            let name = Symbol::new(&format!("{}_next", st.target));
            (name, spores::ir::parse_expr(&mut arena, &st.src).unwrap())
        })
        .collect();
    let bundle = WorkloadExpr::new(arena, roots).unwrap();
    let vars = w
        .input_meta()
        .into_iter()
        .map(|(s, (shape, sparsity))| (s, VarMeta { shape, sparsity }))
        .collect();
    (bundle, vars)
}

#[test]
fn pnmf_workload_mode_is_strictly_cheaper_than_per_statement() {
    let (bundle, vars) = pnmf_shared_bundle();
    let (whole, per_statement) = costs(&bundle, &vars);
    // strictly cheaper: the 60×50 dense product (3001 nnz-cost) is paid
    // once instead of once per consuming statement
    assert!(
        whole.cost_after < per_statement - 1000.0,
        "PNMF workload cost {} not strictly below per-statement sum {per_statement}",
        whole.cost_after
    );
}

#[test]
fn pnmf_extracts_w_times_h_exactly_once_across_statements() {
    let (bundle, vars) = pnmf_shared_bundle();
    let whole = optimizer().optimize_workload(&bundle, &vars).unwrap();
    assert!(!whole.fell_back);
    let root_ids: Vec<NodeId> = whole.roots.iter().map(|&(_, r)| r).collect();
    // exactly one node in the shared plan computes the product …
    let products: Vec<NodeId> = whole
        .arena
        .postorder_multi(&root_ids)
        .into_iter()
        .filter(|&id| whole.arena.display(id) == "W %*% H")
        .collect();
    assert_eq!(
        products.len(),
        1,
        "W %*% H must be bound exactly once; plans: {:?}",
        whole
            .roots
            .iter()
            .map(|&(n, r)| format!("{n} = {}", whole.arena.display(r)))
            .collect::<Vec<_>>()
    );
    // … and at least two statement roots reach it (observable reuse)
    let consumers = root_ids
        .iter()
        .filter(|&&r| whole.arena.postorder(r).contains(&products[0]))
        .count();
    assert!(
        consumers >= 2,
        "shared product reachable from {consumers} roots only"
    );
}

#[test]
fn shared_plan_costs_the_shared_eclass_once() {
    // microscopic instance with a forced share: both statements need the
    // dense outer product u vᵀ (under an element-wise op that cannot be
    // rewritten away), so the workload plan saves ≈ one outer product
    let mut arena = ExprArena::new();
    let r1 = spores::ir::parse_expr(&mut arena, "sum(sigmoid(u %*% t(v)))").unwrap();
    let r2 = spores::ir::parse_expr(&mut arena, "rowSums(sigmoid(u %*% t(v)))").unwrap();
    let bundle =
        WorkloadExpr::new(arena, vec![(Symbol::new("a"), r1), (Symbol::new("b"), r2)]).unwrap();
    let vars: HashMap<Symbol, VarMeta> = [
        (Symbol::new("u"), VarMeta::dense(300, 1)),
        (Symbol::new("v"), VarMeta::dense(200, 1)),
    ]
    .into();
    let (whole, per_statement) = costs(&bundle, &vars);
    let outer_nnz = 300.0 * 200.0;
    assert!(
        per_statement - whole.cost_after >= outer_nnz - 1.0,
        "expected ≈ one outer product saved: workload {} vs sum {per_statement}",
        whole.cost_after
    );
}
