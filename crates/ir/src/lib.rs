//! Intermediate representation shared by the SPORES reproduction crates.
//!
//! This crate provides the building blocks every other crate consumes:
//!
//! * [`Symbol`] — a cheap interned string (matrix names, index names).
//! * [`SExp`] — s-expressions, used by the pattern language of
//!   `spores-egraph` and by tests.
//! * [`LaNode`]/[`ExprArena`] — the linear-algebra surface AST: the seven
//!   operators of Table 1 of the paper plus the element-wise extensions
//!   SystemML supports (division, power, comparisons, unary maps), stored
//!   hash-consed so common subexpressions are shared, exactly like
//!   SystemML's HOP DAGs.
//! * [`Shape`]/[`ShapeEnv`] — shape inference with SystemML-style
//!   broadcasting rules.
//! * a DML-like expression [`parser`] (`sum((X - U %*% t(V))^2)`), used to
//!   author the Figure 14 rewrite corpus and the ML workloads concisely.
//! * [`Fingerprint`] — shape-polymorphic plan fingerprints: the canonical
//!   DAG identity (leaves α-renamed, dimensions abstracted into shape ×
//!   sparsity classes) the optimizer service's plan cache is keyed on.
//! * [`WorkloadExpr`] — a whole workload as named statement roots over
//!   one shared arena (SSA form), the unit the workload-level optimizer
//!   saturates in one e-graph; [`fingerprint_workload`] extends the
//!   fingerprint over the multi-root DAG plus its def-use wiring.

#![forbid(unsafe_code)]

pub mod arena;
pub mod fingerprint;
pub mod parser;
pub mod sexpr;
pub mod shape;
pub mod symbol;
pub mod workload;

pub use arena::{BinOp, ExprArena, LaNode, NodeId, Num, UnOp};
pub use fingerprint::{
    fingerprint, fingerprint_workload, Fingerprint, FingerprintError, LeafClass, ShapeClass,
    SparsityBucket,
};
pub use parser::{parse_expr, ParseError};
pub use sexpr::{parse_sexp, SExp, SExpError};
pub use shape::{Shape, ShapeEnv, ShapeError};
pub use symbol::Symbol;
pub use workload::{WorkloadError, WorkloadExpr};
