//! Property tests for the e-graph: after any sequence of inserts and
//! unions followed by a rebuild, the congruence-closure invariants hold
//! and equality is correctly propagated.

use proptest::prelude::*;
use spores_egraph::{EGraph, Id, Language, Pattern, RecExpr};

/// Tiny arithmetic language for property testing.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Node {
    Add([Id; 2]),
    Neg(Id),
    Leaf(u8),
}

impl Language for Node {
    fn children(&self) -> &[Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_ref(c),
            Node::Leaf(_) => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_mut(c),
            Node::Leaf(_) => &mut [],
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (Node::Add(_), Node::Add(_)) => true,
            (Node::Neg(_), Node::Neg(_)) => true,
            (Node::Leaf(a), Node::Leaf(b)) => a == b,
            _ => false,
        }
    }

    fn op_display(&self) -> String {
        match self {
            Node::Add(_) => "+".into(),
            Node::Neg(_) => "neg".into(),
            Node::Leaf(v) => v.to_string(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        match (op, children.len()) {
            ("+", 2) => Ok(Node::Add([children[0], children[1]])),
            ("neg", 1) => Ok(Node::Neg(children[0])),
            (s, 0) => s.parse::<u8>().map(Node::Leaf).map_err(|e| e.to_string()),
            _ => Err("bad arity".into()),
        }
    }
}

/// An construction script: grow an expression bottom-up, then union
/// random pairs.
#[derive(Clone, Debug)]
enum Step {
    Leaf(u8),
    Add(usize, usize),
    Neg(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..6).prop_map(Step::Leaf),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
            any::<usize>().prop_map(Step::Neg),
        ],
        1..40,
    )
}

/// Build an e-graph from a construction script + unions, rebuilt clean.
fn build_graph(script: &[Step], unions: &[(usize, usize)]) -> EGraph<Node, ()> {
    let mut eg: EGraph<Node, ()> = EGraph::default();
    let mut ids: Vec<Id> = Vec::new();
    for step in script {
        let id = match *step {
            Step::Leaf(v) => eg.add(Node::Leaf(v)),
            Step::Add(a, b) if !ids.is_empty() => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                eg.add(Node::Add([a, b]))
            }
            Step::Neg(a) if !ids.is_empty() => {
                let a = ids[a % ids.len()];
                eg.add(Node::Neg(a))
            }
            _ => eg.add(Node::Leaf(0)),
        };
        ids.push(id);
    }
    for &(a, b) in unions {
        let a = ids[a % ids.len()];
        let b = ids[b % ids.len()];
        eg.union(a, b);
    }
    eg.rebuild();
    eg
}

/// Patterns exercising every machine feature: variable roots, repeated
/// (non-linear) variables, nesting, and literal leaves.
fn differential_patterns() -> Vec<Pattern<Node>> {
    [
        "?a",
        "(+ ?a ?b)",
        "(+ ?a ?a)",
        "(neg ?a)",
        "(neg (neg ?a))",
        "(+ (neg ?a) ?b)",
        "(+ ?a (+ ?b ?c))",
        "(+ (+ ?a ?b) (+ ?c ?a))",
        "(+ 1 ?x)",
        "(neg 3)",
        "2",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_after_unions(script in steps(), unions in prop::collection::vec((any::<usize>(), any::<usize>()), 0..10)) {
        let mut eg: EGraph<Node, ()> = EGraph::default();
        let mut ids: Vec<Id> = Vec::new();
        for step in &script {
            let id = match *step {
                Step::Leaf(v) => eg.add(Node::Leaf(v)),
                Step::Add(a, b) if !ids.is_empty() => {
                    let a = ids[a % ids.len()];
                    let b = ids[b % ids.len()];
                    eg.add(Node::Add([a, b]))
                }
                Step::Neg(a) if !ids.is_empty() => {
                    let a = ids[a % ids.len()];
                    eg.add(Node::Neg(a))
                }
                _ => eg.add(Node::Leaf(0)),
            };
            ids.push(id);
        }
        for &(a, b) in &unions {
            let a = ids[a % ids.len()];
            let b = ids[b % ids.len()];
            eg.union(a, b);
        }
        eg.rebuild();
        eg.check_invariants();
    }

    #[test]
    fn congruence_propagates_to_parents(v in 0u8..6, w in 0u8..6) {
        prop_assume!(v != w);
        let mut eg: EGraph<Node, ()> = EGraph::default();
        let a = eg.add(Node::Leaf(v));
        let b = eg.add(Node::Leaf(w));
        let na = eg.add(Node::Neg(a));
        let nb = eg.add(Node::Neg(b));
        let nna = eg.add(Node::Neg(na));
        let nnb = eg.add(Node::Neg(nb));
        prop_assert_ne!(eg.find(nna), eg.find(nnb));
        eg.union(a, b);
        eg.rebuild();
        prop_assert_eq!(eg.find(na), eg.find(nb));
        prop_assert_eq!(eg.find(nna), eg.find(nnb));
        eg.check_invariants();
    }

    #[test]
    fn indexed_compiled_search_equals_naive(
        script in steps(),
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 0..8),
    ) {
        // The tentpole property: for any graph and any pattern, the
        // op-head-indexed compiled matcher returns exactly the matches
        // of the interpreted all-classes reference matcher.
        let eg = build_graph(&script, &unions);
        for p in differential_patterns() {
            let (indexed, candidates) = p.search_with_stats(&eg);
            let naive = p.naive_search(&eg);
            prop_assert_eq!(indexed.len(), naive.len(), "pattern {}", &p);
            for (i, n) in indexed.iter().zip(&naive) {
                prop_assert_eq!(i.eclass, n.eclass, "pattern {}", &p);
                prop_assert_eq!(&i.substs, &n.substs, "pattern {}", &p);
            }
            prop_assert!(
                candidates <= eg.number_of_classes(),
                "index proposed more candidates than classes exist"
            );
        }
    }

    #[test]
    fn op_index_consistent_after_union_rebuild(
        script in steps(),
        unions in prop::collection::vec((any::<usize>(), any::<usize>()), 0..8),
    ) {
        // classes_with_op must agree with a from-scratch scan of the
        // canonical classes, for every op head present in the graph.
        let eg = build_graph(&script, &unions);
        let mut heads = std::collections::BTreeSet::new();
        for class in eg.classes() {
            for node in class.iter() {
                heads.insert(node.op_key());
            }
        }
        for key in heads {
            let mut want: Vec<Id> = eg
                .classes()
                .filter(|c| c.iter().any(|n| n.op_key() == key))
                .map(|c| eg.find(c.id))
                .collect();
            want.sort();
            let got = eg.classes_with_op(key).to_vec();
            prop_assert_eq!(got, want, "op index out of sync for {:?}", key);
        }
        eg.check_invariants();
    }

    #[test]
    fn add_expr_lookup_roundtrip(script in steps()) {
        // whatever we add must be found by lookup afterwards
        let mut eg: EGraph<Node, ()> = EGraph::default();
        let mut exprs: Vec<RecExpr<Node>> = Vec::new();
        let mut expr = RecExpr::default();
        let mut ids: Vec<Id> = Vec::new();
        for step in &script {
            let node = match *step {
                Step::Leaf(v) => Node::Leaf(v),
                Step::Add(a, b) if !ids.is_empty() => {
                    Node::Add([ids[a % ids.len()], ids[b % ids.len()]])
                }
                Step::Neg(a) if !ids.is_empty() => Node::Neg(ids[a % ids.len()]),
                _ => Node::Leaf(0),
            };
            ids.push(expr.add(node));
        }
        exprs.push(expr);
        for e in &exprs {
            let id = eg.add_expr(e);
            prop_assert_eq!(eg.lookup_expr(e), Some(eg.find(id)));
        }
    }
}
