//! PNMF: the heuristics-vs-saturation story of §4.2.
//!
//! ```text
//! cargo run --release --example pnmf
//! ```
//!
//! The objective `sum(W %*% H) − sum(X * log(W %*% H))` shares `W %*% H`
//! between both terms. SystemML owns the rewrite
//! `sum(W H) → colSums(W) · rowSums(H)` but guards it behind "no other
//! consumer of W H" to protect the CSE — and the other consumer is
//! guarded by its own rule the same way, so *neither* fires. Equality
//! saturation holds every version in one e-graph and lets the global
//! cost model decide, avoiding the dense m×n product entirely.

use spores::ml::{compile, execute, workloads, Mode};

fn main() {
    let w = workloads::pnmf(1000, 1000, 10, 42);
    println!("PNMF {} rank 10, {} iterations", w.size_label, w.iterations);
    println!();
    for mode in [Mode::Base, Mode::Opt2, Mode::spores()] {
        let compiled = compile(&w, &mode);
        println!("[{}] objective statement compiles to:", mode.label());
        let (_, arena, root) = compiled
            .statements
            .iter()
            .find(|(t, _, _)| t.as_str() == "obj")
            .expect("obj statement");
        println!("    obj = {}", arena.display(*root));
        let r = execute(&w, &compiled, &mode).expect("runs");
        println!(
            "    exec {:.1} ms, flops {}, cells allocated {}",
            r.exec_time.as_secs_f64() * 1e3,
            r.stats.flops,
            r.stats.cells_allocated,
        );
        println!();
    }
}
