//! End-to-end behavior of the optimizer service on the paper's shapes:
//! warm hits skip the pipeline, served plans are never costlier than
//! greedy re-optimization, and the cache distinguishes regimes.

use spores_core::{plan_cost, Optimizer, OptimizerConfig, VarMeta};
use spores_ir::{parse_expr, ExprArena, Symbol};
use spores_service::{OptimizerService, PlanSource, Request, ServiceConfig};
use std::collections::HashMap;

fn vars(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, VarMeta> {
    list.iter()
        .map(|&(n, (r, c), s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
        .collect()
}

fn request(src: &str, vs: &HashMap<Symbol, VarMeta>) -> Request {
    let mut arena = ExprArena::new();
    let root = parse_expr(&mut arena, src).unwrap();
    Request::new(arena, root, vs.clone())
}

fn quick_service() -> OptimizerService {
    OptimizerService::new(ServiceConfig {
        optimizer: OptimizerConfig {
            node_limit: 8_000,
            iter_limit: 15,
            ..OptimizerConfig::default()
        },
        workers: 2,
        ..ServiceConfig::default()
    })
}

#[test]
fn repeat_requests_hit_the_cache() {
    let svc = quick_service();
    let vs = vars(&[
        ("X", (1000, 500), 0.001),
        ("u", (1000, 1), 1.0),
        ("v", (500, 1), 1.0),
    ]);
    let src = "sum((X - u %*% t(v))^2)";
    let cold = svc.optimize(request(src, &vs)).unwrap();
    assert_eq!(cold.source, PlanSource::Miss);
    let warm = svc.optimize(request(src, &vs)).unwrap();
    assert_eq!(warm.source, PlanSource::Hit);
    // identical request ⇒ identical plan, and identical cost when both
    // plans are priced in the same (fresh-graph) estimator context —
    // Served.cost itself mixes contexts: misses report the pipeline's
    // saturated-graph estimate, hits the fresh re-check estimate
    assert_eq!(warm.arena.display(warm.root), cold.arena.display(cold.root));
    let warm_cost = plan_cost(&warm.arena, warm.root, &vs).unwrap();
    let cold_cost = plan_cost(&cold.arena, cold.root, &vs).unwrap();
    assert!((warm_cost - cold_cost).abs() <= 1e-6 * (1.0 + cold_cost.abs()));
    let stats = svc.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

#[test]
fn renamed_and_resized_requests_share_one_entry() {
    let svc = quick_service();
    let a = vars(&[
        ("X", (1000, 500), 0.001),
        ("u", (1000, 1), 1.0),
        ("v", (500, 1), 1.0),
    ]);
    let b = vars(&[
        ("M", (2000, 800), 0.002),
        ("p", (2000, 1), 1.0),
        ("q", (800, 1), 1.0),
    ]);
    let cold = svc
        .optimize(request("sum((X - u %*% t(v))^2)", &a))
        .unwrap();
    assert_eq!(cold.source, PlanSource::Miss);
    let warm = svc
        .optimize(request("sum((M - p %*% t(q))^2)", &b))
        .unwrap();
    // the α-renamed, resized request reuses the template (the headline
    // plan is size-polymorphic) and speaks the caller's symbols
    assert_eq!(warm.source, PlanSource::Hit);
    let shown = warm.arena.display(warm.root);
    assert!(shown.contains('M'), "plan must use caller symbols: {shown}");
    assert!(!shown.contains('X'), "template symbols leaked: {shown}");
    assert_eq!(svc.cached_plans(), 1);
}

#[test]
fn hits_are_never_costlier_than_fresh_greedy_optimization() {
    // warm the cache at one size, then request several other sizes in the
    // same shape/sparsity classes and compare against a cold pipeline run
    let svc = quick_service();
    let src = "sum((X - u %*% t(v))^2)";
    let sizes: [(u64, u64); 4] = [(1000, 500), (600, 900), (2000, 300), (1500, 1500)];
    for &(m, n) in &sizes {
        let vs = vars(&[("X", (m, n), 0.001), ("u", (m, 1), 1.0), ("v", (n, 1), 1.0)]);
        let served = svc.optimize(request(src, &vs)).unwrap();
        // re-price the served plan from scratch and compare with what a
        // cold greedy pipeline produces for the same request
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let fresh = Optimizer::new(OptimizerConfig {
            node_limit: 8_000,
            iter_limit: 15,
            ..OptimizerConfig::default()
        })
        .optimize(&arena, root, &vs)
        .unwrap();
        let served_cost = plan_cost(&served.arena, served.root, &vs).unwrap();
        let fresh_cost = plan_cost(&fresh.arena, fresh.root, &vs).unwrap();
        // A cached template is one fixed plan shape, but the cheapest
        // member of a class can flip with aspect ratio (contracting
        // sum(X %*% v * u) vs sum(t(t(X) %*% u) * t(v)) trades m- vs
        // n-sized work), so a template warmed at one size may trail a
        // fresh optimization at an extreme other size by a modest
        // constant factor — the incremental-search runner explores
        // deeply enough to surface those per-size winners (observed
        // worst case ≈ 13% at 2000x300). 20% bounds the drift; the hit
        // must also stay transformative vs. the caller's unoptimized
        // plan (the service's actual guarantee).
        assert!(
            served_cost <= fresh_cost * 1.20 + 1e-6,
            "{m}x{n}: served {served_cost} > fresh greedy {fresh_cost} (source {:?})",
            served.source
        );
        let mut input_arena = ExprArena::new();
        let input_root = parse_expr(&mut input_arena, src).unwrap();
        let input_cost = plan_cost(&input_arena, input_root, &vs).unwrap();
        assert!(
            served_cost * 10.0 < input_cost,
            "{m}x{n}: served {served_cost} not transformative vs input {input_cost}"
        );
    }
    // at least some of those were warm
    assert!(svc.stats().hits > 0);
}

#[test]
fn different_sparsity_regimes_do_not_share_plans() {
    let svc = quick_service();
    let src = "sum((X - u %*% t(v))^2)";
    let sparse = vars(&[
        ("X", (1000, 500), 0.001),
        ("u", (1000, 1), 1.0),
        ("v", (500, 1), 1.0),
    ]);
    let dense = vars(&[
        ("X", (1000, 500), 1.0),
        ("u", (1000, 1), 1.0),
        ("v", (500, 1), 1.0),
    ]);
    let first = svc.optimize(request(src, &sparse)).unwrap();
    assert_eq!(first.source, PlanSource::Miss);
    let second = svc.optimize(request(src, &dense)).unwrap();
    assert_eq!(second.source, PlanSource::Miss, "regimes must not collide");
    assert_eq!(svc.cached_plans(), 2);
}

#[test]
fn batch_coalesces_duplicate_statements() {
    let svc = quick_service();
    let vs = vars(&[
        ("X", (1000, 500), 0.001),
        ("u", (1000, 1), 1.0),
        ("v", (500, 1), 1.0),
    ]);
    let src = "sum((X - u %*% t(v))^2)";
    let results = svc.optimize_batch(vec![
        request(src, &vs),
        request(src, &vs),
        request(src, &vs),
    ]);
    assert_eq!(results.len(), 3);
    for r in &results {
        r.as_ref().unwrap();
    }
    let stats = svc.stats();
    // one pipeline run; the two duplicates either coalesced onto it or
    // (if it finished fast enough) hit the cache
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.coalesced + stats.hits, 2, "{stats:?}");
}

#[test]
fn unbound_variable_is_an_invalid_request() {
    let svc = quick_service();
    let vs = vars(&[("X", (10, 10), 1.0)]);
    let err = svc.optimize(request("X + Q", &vs)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Q"), "{msg}");
}

#[test]
fn eviction_keeps_the_cache_bounded() {
    let svc = OptimizerService::new(ServiceConfig {
        optimizer: OptimizerConfig {
            node_limit: 2_000,
            iter_limit: 6,
            ..OptimizerConfig::default()
        },
        shards: 1,
        capacity: 3,
        workers: 1,
        ..ServiceConfig::default()
    });
    // six structurally distinct expressions
    let vs = vars(&[("A", (50, 50), 1.0), ("B", (50, 50), 1.0)]);
    for src in [
        "A + B",
        "A * B",
        "A %*% B",
        "sum(A * B)",
        "t(A) %*% B",
        "rowSums(A + B)",
    ] {
        svc.optimize(request(src, &vs)).unwrap();
    }
    assert!(svc.cached_plans() <= 3);
    assert!(svc.stats().evictions >= 3);
}
