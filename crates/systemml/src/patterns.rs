//! The Figure 14 corpus: SystemML's hand-coded sum-product rewrite
//! patterns.
//!
//! Each entry is one concrete rewrite pattern from one of the 31 rewrite
//! methods the paper lists, written in DML-like surface syntax with the
//! variable shapes/sparsities that make the rule's side condition hold
//! (e.g. "if Y col vector" entries instantiate Y as `m×1`; the `Empty*`
//! families instantiate the operand with sparsity 0). The Figure 14
//! experiment (`spores-bench --bin fig14`) feeds every LHS through the
//! relational rules and checks the RHS is derived.
//!
//! The per-method pattern counts match the table in the paper.

/// How a derivation should be validated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Validation {
    /// Semantic equivalence via canonical forms (Theorem 2.3) and
    /// e-graph saturation.
    Equivalence,
    /// The rewrite is justified by the `nnz == 0` class invariant: the
    /// optimizer must prove the LHS is identically zero.
    ZeroInvariant,
}

/// One hand-coded SystemML rewrite pattern.
#[derive(Copy, Clone, Debug)]
pub struct RewritePattern {
    /// The rewrite method (first column of Figure 14).
    pub method: &'static str,
    pub lhs: &'static str,
    pub rhs: &'static str,
    /// Variables with shapes and sparsity satisfying the side condition.
    pub vars: &'static [(&'static str, u64, u64, f64)],
    pub validation: Validation,
}

const M: u64 = 8; // generic row count used in the corpus
const N: u64 = 6; // generic col count
const _: () = assert!(M != N, "distinct dims catch orientation bugs");

macro_rules! pat {
    ($method:literal, $lhs:literal, $rhs:literal, [$(($v:literal, $r:expr, $c:expr, $s:expr)),*]) => {
        RewritePattern {
            method: $method,
            lhs: $lhs,
            rhs: $rhs,
            vars: &[$(($v, $r, $c, $s)),*],
            validation: Validation::Equivalence,
        }
    };
    (zero $method:literal, $lhs:literal, $rhs:literal, [$(($v:literal, $r:expr, $c:expr, $s:expr)),*]) => {
        RewritePattern {
            method: $method,
            lhs: $lhs,
            rhs: $rhs,
            vars: &[$(($v, $r, $c, $s)),*],
            validation: Validation::ZeroInvariant,
        }
    };
}

/// The full corpus. Grouped by method, in the order of Figure 14.
pub static CORPUS: &[RewritePattern] = &[
    // --- UnnecessaryOuterProduct (3) ---------------------------------
    pat!(
        "UnnecessaryOuterProduct",
        "X * (Y %*% matrix(1, 1, 6))",
        "X * Y",
        [("X", M, N, 1.0), ("Y", M, 1, 1.0)]
    ),
    pat!(
        "UnnecessaryOuterProduct",
        "X * (matrix(1, 8, 1) %*% Y)",
        "X * Y",
        [("X", M, N, 1.0), ("Y", 1, N, 1.0)]
    ),
    pat!(
        "UnnecessaryOuterProduct",
        "X / (Y %*% matrix(1, 1, 6))",
        "X / Y",
        [("X", M, N, 1.0), ("Y", M, 1, 1.0)]
    ),
    // --- ColwiseAgg (3) ------------------------------------------------
    pat!("ColwiseAgg", "colSums(X)", "sum(X)", [("X", M, 1, 1.0)]),
    pat!("ColwiseAgg", "colSums(X)", "X", [("X", 1, N, 1.0)]),
    pat!(
        "ColwiseAgg",
        "colSums(X)",
        "t(rowSums(t(X)))",
        [("X", M, N, 1.0)]
    ),
    // --- RowwiseAgg (3) ------------------------------------------------
    pat!("RowwiseAgg", "rowSums(X)", "sum(X)", [("X", 1, N, 1.0)]),
    pat!("RowwiseAgg", "rowSums(X)", "X", [("X", M, 1, 1.0)]),
    pat!(
        "RowwiseAgg",
        "rowSums(X)",
        "t(colSums(t(X)))",
        [("X", M, N, 1.0)]
    ),
    // --- ColSumsMVMult (1) ----------------------------------------------
    pat!(
        "ColSumsMVMult",
        "colSums(X * Y)",
        "t(Y) %*% X",
        [("X", M, N, 1.0), ("Y", M, 1, 1.0)]
    ),
    // --- RowSumsMVMult (1) ----------------------------------------------
    pat!(
        "RowSumsMVMult",
        "rowSums(X * Y)",
        "X %*% t(Y)",
        [("X", M, N, 1.0), ("Y", 1, N, 1.0)]
    ),
    // --- UnnecessaryAggregate (9): agg of a 1x1 is the scalar itself ----
    pat!("UnnecessaryAggregate", "sum(X)", "X", [("X", 1, 1, 1.0)]),
    pat!(
        "UnnecessaryAggregate",
        "rowSums(X)",
        "X",
        [("X", 1, 1, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregate",
        "colSums(X)",
        "X",
        [("X", 1, 1, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregate",
        "rowSums(t(X))",
        "X",
        [("X", 1, 1, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregate",
        "colSums(t(X))",
        "X",
        [("X", 1, 1, 1.0)]
    ),
    pat!("UnnecessaryAggregate", "t(X)", "X", [("X", 1, 1, 1.0)]),
    pat!(
        "UnnecessaryAggregate",
        "sum(rowSums(X))",
        "X",
        [("X", 1, 1, 1.0)]
    ),
    pat!("UnnecessaryAggregate", "sum(t(X))", "X", [("X", 1, 1, 1.0)]),
    pat!(
        "UnnecessaryAggregate",
        "sum(X * X)",
        "X * X",
        [("X", 1, 1, 1.0)]
    ),
    // --- EmptyAgg (3): nnz(X) == 0 --------------------------------------
    pat!(zero "EmptyAgg", "sum(X)", "0", [("X", M, N, 0.0)]),
    pat!(zero "EmptyAgg", "rowSums(X)", "matrix(0, 8, 1)", [("X", M, N, 0.0)]),
    pat!(zero "EmptyAgg", "colSums(X)", "matrix(0, 1, 6)", [("X", M, N, 0.0)]),
    // --- EmptyReorgOp (5) -------------------------------------------------
    pat!(zero "EmptyReorgOp", "t(X)", "matrix(0, 6, 8)", [("X", M, N, 0.0)]),
    pat!(zero "EmptyReorgOp", "-X", "matrix(0, 8, 6)", [("X", M, N, 0.0)]),
    pat!(zero "EmptyReorgOp", "abs(X)", "matrix(0, 8, 6)", [("X", M, N, 0.0)]),
    pat!(zero "EmptyReorgOp", "sign(X)", "matrix(0, 8, 6)", [("X", M, N, 0.0)]),
    pat!(zero "EmptyReorgOp", "sqrt(X)", "matrix(0, 8, 6)", [("X", M, N, 0.0)]),
    // --- EmptyMMult (1) -----------------------------------------------------
    pat!(zero "EmptyMMult", "X %*% Y", "matrix(0, 8, 8)",
         [("X", M, N, 1.0), ("Y", N, M, 0.0)]),
    // --- IdentityRepMatrixMult (1) ------------------------------------------
    pat!(
        "IdentityRepMatrixMult",
        "X %*% matrix(1, 1, 1)",
        "X",
        [("X", M, 1, 1.0)]
    ),
    // --- ScalarMatrixMult (2) --------------------------------------------
    pat!(
        "ScalarMatrixMult",
        "X %*% y",
        "X * y",
        [("X", M, 1, 1.0), ("y", 1, 1, 1.0)]
    ),
    pat!(
        "ScalarMatrixMult",
        "y %*% X",
        "X * y",
        [("X", 1, N, 1.0), ("y", 1, 1, 1.0)]
    ),
    // --- pushdownSumOnAdd (2) ---------------------------------------------
    pat!(
        "pushdownSumOnAdd",
        "sum(A + B)",
        "sum(A) + sum(B)",
        [("A", M, N, 1.0), ("B", M, N, 1.0)]
    ),
    pat!(
        "pushdownSumOnAdd",
        "sum(A - B)",
        "sum(A) - sum(B)",
        [("A", M, N, 1.0), ("B", M, N, 1.0)]
    ),
    // --- DotProductSum (2) ---------------------------------------------------
    pat!(
        "DotProductSum",
        "sum(v^2)",
        "t(v) %*% v",
        [("v", M, 1, 1.0)]
    ),
    pat!(
        "DotProductSum",
        "sum(v * v)",
        "t(v) %*% v",
        [("v", M, 1, 1.0)]
    ),
    // --- reorderMinusMatrixMult (2) -----------------------------------------
    pat!(
        "reorderMinusMatrixMult",
        "(-t(X)) %*% y",
        "-(t(X) %*% y)",
        [("X", M, N, 1.0), ("y", M, 1, 1.0)]
    ),
    pat!(
        "reorderMinusMatrixMult",
        "X %*% (-y)",
        "-(X %*% y)",
        [("X", M, N, 1.0), ("y", N, 1, 1.0)]
    ),
    // --- SumMatrixMult (3) -----------------------------------------------------
    pat!(
        "SumMatrixMult",
        "sum(A %*% B)",
        "sum(t(colSums(A)) * rowSums(B))",
        [("A", M, N, 1.0), ("B", N, M, 1.0)]
    ),
    pat!(
        "SumMatrixMult",
        "sum(A %*% v)",
        "sum(t(colSums(A)) * v)",
        [("A", M, N, 1.0), ("v", N, 1, 1.0)]
    ),
    pat!(
        "SumMatrixMult",
        "sum(t(v) %*% B)",
        "sum(v * rowSums(B))",
        [("v", N, 1, 1.0), ("B", N, M, 1.0)]
    ),
    // --- EmptyBinaryOperation (3) ------------------------------------------------
    pat!(zero "EmptyBinaryOperation", "X * Y", "matrix(0, 8, 6)",
         [("X", M, N, 1.0), ("Y", M, N, 0.0)]),
    pat!(
        "EmptyBinaryOperation",
        "X + Y",
        "X",
        [("X", M, N, 1.0), ("Y", M, N, 0.0)]
    ),
    pat!(
        "EmptyBinaryOperation",
        "X - Y",
        "X",
        [("X", M, N, 1.0), ("Y", M, N, 0.0)]
    ),
    // --- ScalarMVBinaryOperation (1) ----------------------------------------------
    pat!(
        "ScalarMVBinaryOperation",
        "X * y",
        "X * y",
        [("X", M, N, 1.0), ("y", 1, 1, 1.0)]
    ),
    // --- UnnecessaryBinaryOperation (6) ----------------------------------------
    pat!(
        "UnnecessaryBinaryOperation",
        "X * 1",
        "X",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryBinaryOperation",
        "1 * X",
        "X",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryBinaryOperation",
        "X + 0",
        "X",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryBinaryOperation",
        "0 + X",
        "X",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryBinaryOperation",
        "X - 0",
        "X",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryBinaryOperation",
        "X / 1",
        "X",
        [("X", M, N, 1.0)]
    ),
    // --- BinaryToUnaryOperation (3) ------------------------------------------------
    pat!("BinaryToUnaryOperation", "X * X", "X^2", [("X", M, N, 1.0)]),
    pat!(
        "BinaryToUnaryOperation",
        "X + X",
        "X * 2",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "BinaryToUnaryOperation",
        "(X > 0) - (X < 0)",
        "sign(X)",
        [("X", M, N, 1.0)]
    ),
    // --- MatrixMultScalarAdd (2) -----------------------------------------------------
    pat!(
        "MatrixMultScalarAdd",
        "s + U %*% t(V)",
        "U %*% t(V) + s",
        [("s", 1, 1, 1.0), ("U", M, 2, 1.0), ("V", N, 2, 1.0)]
    ),
    pat!(
        "MatrixMultScalarAdd",
        "s - U %*% t(V)",
        "-(U %*% t(V)) + s",
        [("s", 1, 1, 1.0), ("U", M, 2, 1.0), ("V", N, 2, 1.0)]
    ),
    // --- DistributiveBinaryOperation (4) ------------------------------------------
    pat!(
        "DistributiveBinaryOperation",
        "X - Y*X",
        "(1 - Y) * X",
        [("X", M, N, 1.0), ("Y", M, N, 1.0)]
    ),
    pat!(
        "DistributiveBinaryOperation",
        "X + Y*X",
        "(1 + Y) * X",
        [("X", M, N, 1.0), ("Y", M, N, 1.0)]
    ),
    pat!(
        "DistributiveBinaryOperation",
        "X - X*Y",
        "X * (1 - Y)",
        [("X", M, N, 1.0), ("Y", M, N, 1.0)]
    ),
    pat!(
        "DistributiveBinaryOperation",
        "X*Y + X",
        "X * (Y + 1)",
        [("X", M, N, 1.0), ("Y", M, N, 1.0)]
    ),
    // --- BushyBinaryOperation (3) ---------------------------------------------------
    pat!(
        "BushyBinaryOperation",
        "X * (Y * (Z %*% v))",
        "(X * Y) * (Z %*% v)",
        [
            ("X", M, 1, 1.0),
            ("Y", M, 1, 1.0),
            ("Z", M, N, 1.0),
            ("v", N, 1, 1.0)
        ]
    ),
    pat!(
        "BushyBinaryOperation",
        "X * (Y * v)",
        "(X * Y) * v",
        [("X", M, N, 1.0), ("Y", M, N, 1.0), ("v", M, 1, 1.0)]
    ),
    pat!(
        "BushyBinaryOperation",
        "(X * Y) * Z",
        "X * (Y * Z)",
        [("X", M, N, 1.0), ("Y", M, N, 1.0), ("Z", M, N, 1.0)]
    ),
    // --- UnaryAggReorgOperation (3) -------------------------------------------------
    pat!(
        "UnaryAggReorgOperation",
        "sum(t(X))",
        "sum(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnaryAggReorgOperation",
        "sum(-X)",
        "-sum(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnaryAggReorgOperation",
        "sum(t(X) * 2)",
        "sum(X * 2)",
        [("X", M, N, 1.0)]
    ),
    // --- UnnecessaryAggregates (8) ---------------------------------------------------
    pat!(
        "UnnecessaryAggregates",
        "sum(rowSums(X))",
        "sum(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregates",
        "sum(colSums(X))",
        "sum(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregates",
        "rowSums(rowSums(X))",
        "rowSums(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregates",
        "colSums(colSums(X))",
        "colSums(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregates",
        "sum(sum(X))",
        "sum(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregates",
        "colSums(rowSums(X))",
        "sum(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregates",
        "rowSums(colSums(X))",
        "sum(X)",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryAggregates",
        "sum(rowSums(X) + rowSums(Y))",
        "sum(X) + sum(Y)",
        [("X", M, N, 1.0), ("Y", M, N, 1.0)]
    ),
    // --- BinaryMatrixScalarOperation (3) ----------------------------------------------
    pat!(
        "BinaryMatrixScalarOperation",
        "sum(X * s)",
        "sum(X) * s",
        [("X", 1, 1, 1.0), ("s", 1, 1, 1.0)]
    ),
    pat!(
        "BinaryMatrixScalarOperation",
        "sum(X + s)",
        "sum(X) + s",
        [("X", 1, 1, 1.0), ("s", 1, 1, 1.0)]
    ),
    pat!(
        "BinaryMatrixScalarOperation",
        "sum(X / s)",
        "sum(X) / s",
        [("X", 1, 1, 1.0), ("s", 1, 1, 1.0)]
    ),
    // --- pushdownUnaryAggTransposeOp (2) ------------------------------------------------
    pat!(
        "pushdownUnaryAggTransposeOp",
        "colSums(t(X))",
        "t(rowSums(X))",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "pushdownUnaryAggTransposeOp",
        "rowSums(t(X))",
        "t(colSums(X))",
        [("X", M, N, 1.0)]
    ),
    // --- pushdownCSETransposeScalarOp (1) ------------------------------------------------
    pat!(
        "pushdownCSETransposeScalarOp",
        "t(X^2)",
        "t(X)^2",
        [("X", M, N, 1.0)]
    ),
    // --- pushdownSumBinaryMult (2) ---------------------------------------------------------
    pat!(
        "pushdownSumBinaryMult",
        "sum(s * X)",
        "s * sum(X)",
        [("s", 1, 1, 1.0), ("X", M, N, 1.0)]
    ),
    pat!(
        "pushdownSumBinaryMult",
        "sum(X * s)",
        "s * sum(X)",
        [("s", 1, 1, 1.0), ("X", M, N, 1.0)]
    ),
    // --- UnnecessaryReorgOperation (2) --------------------------------------------------------
    pat!(
        "UnnecessaryReorgOperation",
        "t(t(X))",
        "X",
        [("X", M, N, 1.0)]
    ),
    pat!(
        "UnnecessaryReorgOperation",
        "t(t(X) * 2)",
        "X * 2",
        [("X", M, N, 1.0)]
    ),
    // --- TransposeAggBinBinaryChains (2) ----------------------------------------------------
    pat!(
        "TransposeAggBinBinaryChains",
        "t(t(A) %*% t(B) + C)",
        "B %*% A + t(C)",
        [("A", M, N, 1.0), ("B", N, M, 1.0), ("C", N, N, 1.0)]
    ),
    pat!(
        "TransposeAggBinBinaryChains",
        "t(t(A) %*% t(B))",
        "B %*% A",
        [("A", M, N, 1.0), ("B", N, M, 1.0)]
    ),
    // --- UnnecessaryMinus (1) --------------------------------------------------------------
    pat!("UnnecessaryMinus", "-(-X)", "X", [("X", M, N, 1.0)]),
];

/// Distinct method names, in corpus order.
pub fn methods() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for p in CORPUS {
        if !out.contains(&p.method) {
            out.push(p.method);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_31_methods() {
        assert_eq!(methods().len(), 31);
    }

    #[test]
    fn per_method_counts_match_figure_14() {
        let count = |m: &str| CORPUS.iter().filter(|p| p.method == m).count();
        for (m, n) in [
            ("UnnecessaryOuterProduct", 3),
            ("ColwiseAgg", 3),
            ("RowwiseAgg", 3),
            ("ColSumsMVMult", 1),
            ("RowSumsMVMult", 1),
            ("UnnecessaryAggregate", 9),
            ("EmptyAgg", 3),
            ("EmptyReorgOp", 5),
            ("EmptyMMult", 1),
            ("IdentityRepMatrixMult", 1),
            ("ScalarMatrixMult", 2),
            ("pushdownSumOnAdd", 2),
            ("DotProductSum", 2),
            ("reorderMinusMatrixMult", 2),
            ("SumMatrixMult", 3),
            ("EmptyBinaryOperation", 3),
            ("ScalarMVBinaryOperation", 1),
            ("UnnecessaryBinaryOperation", 6),
            ("BinaryToUnaryOperation", 3),
            ("MatrixMultScalarAdd", 2),
            ("DistributiveBinaryOperation", 4),
            ("BushyBinaryOperation", 3),
            ("UnaryAggReorgOperation", 3),
            ("UnnecessaryAggregates", 8),
            ("BinaryMatrixScalarOperation", 3),
            ("pushdownUnaryAggTransposeOp", 2),
            ("pushdownCSETransposeScalarOp", 1),
            ("pushdownSumBinaryMult", 2),
            ("UnnecessaryReorgOperation", 2),
            ("TransposeAggBinBinaryChains", 2),
            ("UnnecessaryMinus", 1),
        ] {
            assert_eq!(count(m), n, "{m}");
        }
    }

    #[test]
    fn every_pattern_parses() {
        for p in CORPUS {
            let mut arena = spores_ir::ExprArena::new();
            spores_ir::parse_expr(&mut arena, p.lhs).unwrap_or_else(|e| panic!("{}: {e}", p.lhs));
            spores_ir::parse_expr(&mut arena, p.rhs).unwrap_or_else(|e| panic!("{}: {e}", p.rhs));
        }
    }

    #[test]
    fn every_pattern_shape_checks() {
        for p in CORPUS {
            let mut arena = spores_ir::ExprArena::new();
            let l = spores_ir::parse_expr(&mut arena, p.lhs).unwrap();
            let r = spores_ir::parse_expr(&mut arena, p.rhs).unwrap();
            let env: spores_ir::ShapeEnv = p
                .vars
                .iter()
                .map(|&(n, rr, cc, _)| (spores_ir::Symbol::new(n), spores_ir::Shape::new(rr, cc)))
                .collect();
            let ls = arena
                .shape_of(l, &env)
                .unwrap_or_else(|e| panic!("{}: {e}", p.lhs));
            let rs = arena
                .shape_of(r, &env)
                .unwrap_or_else(|e| panic!("{}: {e}", p.rhs));
            assert_eq!(ls, rs, "{} vs {}", p.lhs, p.rhs);
        }
    }
}
