//! Workload-level requests: whole programs served as one cache entry.
//!
//! A workload request carries an SSA statement bundle
//! ([`spores_ir::WorkloadExpr`]) and is optimized by
//! [`spores_core::Optimizer::optimize_workload`]: one shared e-graph,
//! one saturation pass, one multi-root plan with cross-statement CSE.
//! The cache key is the *workload-level* fingerprint
//! ([`spores_ir::fingerprint_workload`]) — the same α-renaming the
//! single-statement cache uses, applied over the multi-root DAG plus the
//! def-use wiring of statement names — so a repeated workload hits the
//! cache as ONE entry, and a hit re-instantiates the whole multi-root
//! template (sharing preserved) without touching saturation.
//!
//! Hits run the same guard as single-statement hits: the instantiated
//! template is re-priced under the caller's metadata and rejected when
//! it prices worse than the caller's own statements (beyond the
//! estimator-drift slack), so a workload hit is never meaningfully worse
//! than not having had a cache at all.

use crate::cache::CacheEntry;
use crate::service::PlanSource;
use spores_core::PhaseTimings;
use spores_core::VarMeta;
use spores_ir::{ExprArena, NodeId, Shape, Symbol, WorkloadExpr};
use std::collections::HashMap;
use std::time::Duration;

/// One workload optimization request: an SSA bundle plus metadata for
/// every leaf it reads (inputs *and* version symbols of earlier roots).
#[derive(Clone, Debug)]
pub struct WorkloadRequest {
    pub workload: WorkloadExpr,
    pub vars: HashMap<Symbol, VarMeta>,
}

impl WorkloadRequest {
    pub fn new(workload: WorkloadExpr, vars: HashMap<Symbol, VarMeta>) -> WorkloadRequest {
        WorkloadRequest { workload, vars }
    }
}

/// A served workload plan: the shared multi-root arena plus provenance.
#[derive(Clone, Debug)]
pub struct ServedWorkload {
    /// The shared plan arena (common subplans bound once).
    pub arena: ExprArena,
    /// Per-statement `(name, plan root)` in request order, names taken
    /// from the caller's bundle.
    pub roots: Vec<(Symbol, NodeId)>,
    /// Summed [`spores_core::plan_cost`] of the served roots (pipeline
    /// estimate for misses, fresh re-check estimate for hits).
    pub cost: f64,
    pub source: PlanSource,
    pub latency: Duration,
    /// Pipeline phase timings (of the cached run, for hits).
    pub timings: PhaseTimings,
    /// Saturation facts of the producing run (cached, for hits).
    pub converged: bool,
    pub timed_out: bool,
    pub e_nodes: usize,
}

/// One workload cache entry: the α-renamed multi-root template plus the
/// facts needed for admission, mirroring [`crate::cache::CachedPlan`].
#[derive(Clone, Debug)]
pub struct CachedWorkloadPlan {
    /// Template arena over `$k` slot leaves.
    pub arena: ExprArena,
    /// Template plan roots, positionally matching the request's roots.
    pub roots: Vec<NodeId>,
    /// Summed plan cost at creation time.
    pub cost: f64,
    pub timings: PhaseTimings,
    pub converged: bool,
    pub timed_out: bool,
    pub e_nodes: usize,
    pub size_polymorphic: bool,
    /// Concrete per-slot shapes the template was optimized for.
    pub slot_shapes: Vec<Shape>,
}

impl CacheEntry for CachedWorkloadPlan {
    fn size_polymorphic(&self) -> bool {
        self.size_polymorphic
    }

    fn slot_shapes(&self) -> &[Shape] {
        &self.slot_shapes
    }
}
